#include "liplib/dist/coordinator.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "liplib/serve/cache.hpp"
#include "liplib/serve/protocol.hpp"
#include "liplib/support/check.hpp"

namespace liplib::dist {

Coordinator::Coordinator(CoordinatorOptions opts)
    : opts_(std::move(opts)), recorder_(opts_.clock_us) {
  LIPLIB_EXPECT(opts_.shards >= 1, "coordinator needs at least one shard");
  campaign_spec_ = named_campaign_to_string(opts_.spec);
  // The job vector is built once just to learn the campaign's length
  // (mix-style batching could make it differ from spec.jobs); workers
  // rebuild their slices from the spec string.
  total_jobs_ = campaign::make_named_campaign(opts_.spec).size();
  slots_.resize(opts_.shards);
  stats_.shards_total = opts_.shards;
  if (opts_.trace) {
    // The campaign's trace: the caller's when it passed one, else the
    // campaign's own content hash — either way every shard's spans
    // share this one id, which is what joins the merged timeline.
    trace_id_ = opts_.parent.enabled()
                    ? opts_.parent.trace_id
                    : trace::derive_trace_id(serve::fnv1a64(campaign_spec_));
    root_span_ = trace::derive_span_id(trace_id_, opts_.parent.parent_span, 0);
  }
  registry_.describe("liplib_dist_outstanding_leases",
                     metrics::MetricType::kGauge,
                     "Shard leases currently outstanding.");
  registry_.describe("liplib_dist_shards_done", metrics::MetricType::kGauge,
                     "Shards whose partial aggregate has been merged.");
  registry_.describe("liplib_dist_redispatches_total",
                     metrics::MetricType::kCounter,
                     "Leases re-issued after their deadline expired.");
  registry_.describe("liplib_dist_duplicates_total",
                     metrics::MetricType::kCounter,
                     "Partials dropped by first-complete-wins dedup.");
}

Coordinator::~Coordinator() {
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // wakes a blocked accept()
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

std::uint64_t Coordinator::now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Coordinator::start() {
  LIPLIB_EXPECT(listen_fd_ < 0, "Coordinator::start called twice");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw ApiError(std::string("socket failed: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // Loopback only, like the serve daemon: the coordinator trusts its
  // workers; remote fleets front it with their own transport.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw ApiError("cannot bind 127.0.0.1:" + std::to_string(opts_.port) +
                   ": " + std::strerror(err));
  }
  if (::listen(fd, 128) < 0) {
    const int err = errno;
    ::close(fd);
    throw ApiError(std::string("listen failed: ") + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  if (opts_.trace) start_us_ = recorder_.now_us();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Coordinator::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (destructor) or fatal error
    }
    serve_connection(fd);
  }
}

void Coordinator::serve_connection(int fd) {
  try {
    std::string payload;
    while (serve::read_frame(fd, payload)) {
      serve::write_frame(fd, handle_message(payload));
    }
  } catch (const std::exception&) {
    // Framing violation or peer death mid-frame: drop the connection;
    // any lease the peer held simply expires.
  }
  ::close(fd);
}

std::string Coordinator::handle_message(const std::string& payload) {
  Json id;
  try {
    const Json doc = Json::parse(payload);
    LIPLIB_EXPECT(doc.is_object(), "message must be a JSON object");
    const Json* rpc = doc.find("rpc");
    LIPLIB_EXPECT(rpc && rpc->is_string() &&
                      rpc->as_string() == kDistRpcSchema,
                  std::string("expected rpc \"") + kDistRpcSchema + "\"");
    const Json* msg = doc.find("msg");
    LIPLIB_EXPECT(msg && msg->is_string(), "missing 'msg'");
    const std::string& kind = msg->as_string();
    if (kind == "lease") return handle_lease().dump();
    if (kind == "result") {
      return handle_result(doc, payload.size()).dump();
    }
    if (kind == "status") return status_json().dump();
    if (kind == "metrics") {
      return Json::object()
          .set("rpc", kDistRpcSchema)
          .set("msg", "metrics")
          .set("content_type", "text/plain; version=0.0.4")
          .set("text", metrics_text())
          .dump();
    }
    if (kind == "trace") {
      return Json::object()
          .set("rpc", kDistRpcSchema)
          .set("msg", "trace")
          .set("doc", trace_json())
          .dump();
    }
    throw ApiError("unknown dist message '" + kind + "'");
  } catch (const std::exception& e) {
    return Json::object()
        .set("rpc", kDistRpcSchema)
        .set("msg", "error")
        .set("error", std::string(e.what()))
        .dump();
  }
}

Json Coordinator::handle_lease() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t now = now_ms();
  // First pending shard, else the longest-expired lease (the straggler
  // re-dispatch path); lowest index wins ties so scheduling is stable.
  std::size_t pick = slots_.size();
  bool redispatch = false;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].state == ShardState::kPending) {
      pick = i;
      redispatch = false;
      break;
    }
    if (slots_[i].state == ShardState::kLeased &&
        slots_[i].deadline_ms <= now &&
        (pick == slots_.size() ||
         slots_[i].deadline_ms < slots_[pick].deadline_ms)) {
      pick = i;
      redispatch = true;
    }
  }
  if (pick == slots_.size()) {
    if (stats_.shards_done == slots_.size()) {
      return Json::object().set("rpc", kDistRpcSchema).set("msg", "done");
    }
    return Json::object()
        .set("rpc", kDistRpcSchema)
        .set("msg", "wait")
        .set("retry_ms", opts_.wait_ms);
  }
  slots_[pick].state = ShardState::kLeased;
  slots_[pick].deadline_ms = now + opts_.lease_ms;
  stats_.leases_issued++;
  if (redispatch) stats_.redispatches++;
  if (opts_.trace) {
    // The lease span id is positional — (shard, attempt), never a
    // request-arrival sequence — so a re-run with the same schedule
    // derives the same ids.  The (index+1) << 32 shift keeps lease
    // salts disjoint from the merge span's fixed salt.
    slots_[pick].attempts++;
    slots_[pick].lease_span = trace::derive_span_id(
        trace_id_, root_span_,
        (static_cast<std::uint64_t>(pick + 1) << 32) |
            slots_[pick].attempts);
    slots_[pick].lease_ts_us = recorder_.now_us();
    if (redispatch) {
      root_events_.push_back({"dist.redispatch", recorder_.now_us()});
    }
  }
  const ShardManifest m = make_manifest(
      campaign_spec_, total_jobs_, opts_.base_seed, opts_.cycle_budget,
      xir::engine_mode_name(opts_.spec.engine),
      shard_range(total_jobs_, pick, slots_.size()));
  Json resp = Json::object()
                  .set("rpc", kDistRpcSchema)
                  .set("msg", "lease")
                  .set("manifest", manifest_to_json(m));
  if (opts_.trace) {
    // The worker's spans will parent on this lease's span.
    resp.set("trace", trace::TraceContext{trace_id_, slots_[pick].lease_span}
                          .to_json());
  }
  return resp;
}

Json Coordinator::handle_result(const Json& doc, std::size_t payload_bytes) {
  const Json* partial = doc.find("partial");
  LIPLIB_EXPECT(partial, "result message: missing 'partial'");
  Partial p = partial_from_json(*partial);
  LIPLIB_EXPECT(p.manifest.campaign_hash == serve::fnv1a64(campaign_spec_) &&
                    p.manifest.campaign == campaign_spec_ &&
                    p.manifest.total_jobs == total_jobs_ &&
                    p.manifest.base_seed == opts_.base_seed &&
                    p.manifest.cycle_budget == opts_.cycle_budget,
                "result message: partial belongs to a different campaign");
  LIPLIB_EXPECT(p.manifest.shard.count == slots_.size() &&
                    p.manifest.shard.index < slots_.size(),
                "result message: shard index outside this plan");
  bool accepted = false;
  std::uint64_t lease_span = 0;
  std::uint64_t lease_ts = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = slots_[p.manifest.shard.index];
    if (slot.state != ShardState::kDone) {
      // First complete wins; a later duplicate (the straggler whose
      // lease was re-dispatched) is byte-identical anyway and dropped.
      slot.state = ShardState::kDone;
      slot.aggregate = std::move(p.aggregate);
      stats_.shards_done++;
      stats_.bytes_merged += payload_bytes;
      accepted = true;
      lease_span = slot.lease_span;
      lease_ts = slot.lease_ts_us;
      if (stats_.shards_done == slots_.size()) done_cv_.notify_all();
    } else {
      stats_.duplicates++;
      if (opts_.trace) {
        root_events_.push_back({"dist.duplicate", recorder_.now_us()});
      }
    }
  }
  if (opts_.trace && accepted) {
    // The accepted shard's lease span (grant → merged result); the
    // straggler's spans are dropped with its duplicate partial so the
    // timeline keeps exactly one execute per shard.
    if (const Json* spans = doc.find("spans")) {
      for (trace::Span& s : trace::spans_from_json(*spans)) {
        recorder_.record(std::move(s));
      }
    }
    trace::Span lease;
    lease.trace_id = trace_id_;
    lease.span_id = lease_span;
    lease.parent_span = root_span_;
    lease.name = "dist.lease";
    lease.category = "dist";
    lease.track = "coordinator";
    lease.ts_us = lease_ts;
    lease.dur_us = recorder_.now_us() - lease_ts;
    lease.attrs.emplace_back(
        "shard", std::to_string(p.manifest.shard.index) + "/" +
                     std::to_string(p.manifest.shard.count));
    recorder_.record(std::move(lease));
  }
  return Json::object()
      .set("rpc", kDistRpcSchema)
      .set("msg", "ack")
      .set("accepted", accepted);
}

campaign::Aggregate Coordinator::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return stats_.shards_done == slots_.size(); });
  // Fold in shard order — the same left fold aggregate() runs over its
  // blocks, so the result is byte-identical to the unsharded run.
  const std::uint64_t merge_ts = opts_.trace ? recorder_.now_us() : 0;
  campaign::Aggregate merged;
  for (const Slot& slot : slots_) {
    merged = campaign::merge(merged, slot.aggregate);
  }
  if (opts_.trace) {
    trace::Span sp;
    sp.trace_id = trace_id_;
    sp.span_id = trace::derive_span_id(trace_id_, root_span_, 1);
    sp.parent_span = root_span_;
    sp.name = "dist.merge";
    sp.category = "dist";
    sp.track = "coordinator";
    sp.ts_us = merge_ts;
    sp.dur_us = recorder_.now_us() - merge_ts;
    sp.attrs.emplace_back("shards", std::to_string(slots_.size()));
    recorder_.record(std::move(sp));
  }
  return merged;
}

CoordinatorStats Coordinator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Json Coordinator::status_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t pending = 0, leased = 0;
  for (const Slot& s : slots_) {
    if (s.state == ShardState::kPending) pending++;
    if (s.state == ShardState::kLeased) leased++;
  }
  return Json::object()
      .set("schema", "liplib.dist.status/1")
      .set("campaign", campaign_spec_)
      .set("campaign_hash", serve::fnv1a64(campaign_spec_))
      .set("total_jobs", static_cast<std::uint64_t>(total_jobs_))
      .set("shards",
           Json::object()
               .set("total", static_cast<std::uint64_t>(slots_.size()))
               .set("pending", static_cast<std::uint64_t>(pending))
               .set("leased", static_cast<std::uint64_t>(leased))
               .set("done",
                    static_cast<std::uint64_t>(stats_.shards_done)))
      .set("leases_issued", stats_.leases_issued)
      .set("redispatches", stats_.redispatches)
      .set("duplicates", stats_.duplicates)
      .set("bytes_merged", stats_.bytes_merged);
}

Json Coordinator::trace_json() const {
  std::vector<trace::Span> spans = recorder_.snapshot();
  // The campaign root is synthesized at scrape time so an in-flight
  // campaign still answers: it spans [start, now) and carries the
  // scheduling events (re-dispatches, duplicate drops).
  trace::Span root;
  root.trace_id = trace_id_;
  root.span_id = root_span_;
  root.parent_span = opts_.parent.parent_span;
  root.name = "dist.campaign";
  root.category = "dist";
  root.track = "coordinator";
  root.ts_us = start_us_;
  root.dur_us = recorder_.now_us() - start_us_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    root.events = root_events_;
    root.attrs.emplace_back("campaign", campaign_spec_);
    root.attrs.emplace_back("shards", std::to_string(slots_.size()));
  }
  spans.push_back(std::move(root));
  return trace::spans_to_json(std::move(spans));
}

std::string Coordinator::metrics_text() const {
  // Mirror the live slot states into the registry at scrape time; the
  // counters advance by delta so repeated scrapes stay monotone.
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t leased = 0;
    for (const Slot& s : slots_) {
      if (s.state == ShardState::kLeased) leased++;
    }
    registry_.gauge_set("liplib_dist_outstanding_leases", {},
                        static_cast<std::int64_t>(leased));
    registry_.gauge_set("liplib_dist_shards_done", {},
                        static_cast<std::int64_t>(stats_.shards_done));
    registry_.counter_add(
        "liplib_dist_redispatches_total", {},
        stats_.redispatches -
            registry_.counter_value("liplib_dist_redispatches_total", {}));
    registry_.counter_add(
        "liplib_dist_duplicates_total", {},
        stats_.duplicates -
            registry_.counter_value("liplib_dist_duplicates_total", {}));
  }
  return registry_.expose_text();
}

}  // namespace liplib::dist
