#include "liplib/dist/worker.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "liplib/campaign/campaign.hpp"
#include "liplib/campaign/jobs.hpp"
#include "liplib/campaign/report.hpp"
#include "liplib/dist/coordinator.hpp"
#include "liplib/dist/shard.hpp"
#include "liplib/serve/protocol.hpp"
#include "liplib/support/check.hpp"
#include "liplib/trace/trace.hpp"

namespace liplib::dist {

namespace {

/// One request/response round trip on a fresh connection.  Returns
/// false when the coordinator is unreachable or hung up (the normal end
/// of a campaign once the coordinator exited); throws ApiError only on
/// a protocol violation from a live coordinator.
bool round_trip(std::uint16_t port, const Json& request, Json* response) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw ApiError(std::string("socket failed: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return false;
  }
  try {
    serve::write_frame(fd, request.dump());
    std::string payload;
    if (!serve::read_frame(fd, payload)) {
      ::close(fd);
      return false;  // hung up without answering: coordinator dying
    }
    *response = Json::parse(payload);
  } catch (...) {
    // Send/recv failure mid-frame: treat like an unreachable
    // coordinator rather than a protocol violation.
    ::close(fd);
    return false;
  }
  ::close(fd);
  const Json* msg = response->find("msg");
  LIPLIB_EXPECT(response->is_object() && msg && msg->is_string(),
                "coordinator sent a malformed dist message");
  if (msg->as_string() == "error") {
    const Json* err = response->find("error");
    throw ApiError("coordinator rejected the request: " +
                   (err && err->is_string() ? err->as_string()
                                            : std::string("unknown")));
  }
  return true;
}

/// Runs the leased slice and builds the partial document.  When
/// `recorder` is non-null the engine records one span per chunk under
/// `chunk_parent` (the worker's execute span).
Json compute_partial(const ShardManifest& m, unsigned threads,
                     trace::Recorder* recorder,
                     trace::TraceContext chunk_parent) {
  const campaign::NamedCampaignSpec spec =
      named_campaign_from_string(m.campaign);
  const auto jobs = campaign::make_named_campaign(spec);
  LIPLIB_EXPECT(jobs.size() == m.total_jobs,
                "lease manifest: campaign '" + m.campaign + "' builds " +
                    std::to_string(jobs.size()) + " job(s), manifest says " +
                    std::to_string(m.total_jobs));
  const std::vector<campaign::Job> slice(
      jobs.begin() + static_cast<std::ptrdiff_t>(m.shard.lo),
      jobs.begin() + static_cast<std::ptrdiff_t>(m.shard.hi));
  campaign::EngineOptions eopts;
  eopts.threads = threads;
  eopts.base_seed = m.base_seed;
  eopts.cycle_budget = m.cycle_budget;
  eopts.index_base = m.shard.lo;  // global identity: same seeds as unsharded
  eopts.recorder = recorder;
  eopts.trace_parent = chunk_parent;
  const auto results = campaign::Engine(eopts).run(slice);
  return partial_to_json(m, campaign::aggregate(results));
}

}  // namespace

WorkerStats run_worker(const WorkerOptions& opts) {
  WorkerStats stats;
  const Json lease_req = Json::object()
                             .set("rpc", kDistRpcSchema)
                             .set("msg", "lease");
  for (;;) {
    Json response;
    if (!round_trip(opts.port, lease_req, &response)) {
      // Coordinator gone.  After progress that is the normal end of a
      // campaign (the coordinator exits once the last shard merges);
      // before any lease it means the worker was pointed at nothing.
      LIPLIB_EXPECT(stats.leases > 0,
                    "cannot reach a coordinator on 127.0.0.1:" +
                        std::to_string(opts.port));
      stats.coordinator_gone = true;
      return stats;
    }
    const std::string msg = response.find("msg")->as_string();
    if (msg == "done") return stats;
    if (msg == "wait") {
      std::uint64_t retry = 100;
      if (const Json* f = response.find("retry_ms")) {
        if (f->is_number()) retry = f->as_uint();
      }
      retry = std::min(retry, opts.max_poll_ms);
      std::this_thread::sleep_for(std::chrono::milliseconds(retry));
      continue;
    }
    LIPLIB_EXPECT(msg == "lease",
                  "coordinator sent unexpected message '" + msg + "'");
    const Json* mdoc = response.find("manifest");
    LIPLIB_EXPECT(mdoc, "lease message: missing 'manifest'");
    const ShardManifest manifest = manifest_from_json(*mdoc);
    stats.leases++;
    if (opts.die_after_lease && stats.leases >= opts.die_after_lease) {
      // Simulated crash: walk away holding the lease.  The coordinator
      // re-dispatches the shard once the lease deadline passes.
      return stats;
    }
    // Coordinator-driven tracing: a lease that carries a trace context
    // gets a fresh per-shard recorder — one "dist.worker.execute" span
    // wrapping the engine run (whose chunk spans nest under it) — and
    // the span document travels back with the partial.
    const trace::TraceContext lease_ctx =
        trace::TraceContext::from_envelope(response);
    Json partial;
    Json spans_doc;
    if (lease_ctx.enabled()) {
      trace::Recorder rec(opts.clock_us);
      const std::uint64_t exec_id =
          trace::derive_span_id(lease_ctx.trace_id, lease_ctx.parent_span, 0);
      const std::uint64_t ts = rec.now_us();
      partial = compute_partial(
          manifest, opts.threads, &rec,
          trace::TraceContext{lease_ctx.trace_id, exec_id});
      trace::Span ex;
      ex.trace_id = lease_ctx.trace_id;
      ex.span_id = exec_id;
      ex.parent_span = lease_ctx.parent_span;
      ex.name = "dist.worker.execute";
      ex.category = "dist";
      ex.track = "worker";
      ex.ts_us = ts;
      ex.dur_us = rec.now_us() - ts;
      ex.attrs.emplace_back(
          "shard", std::to_string(manifest.shard.index) + "/" +
                       std::to_string(manifest.shard.count));
      ex.attrs.emplace_back(
          "jobs", std::to_string(manifest.shard.hi - manifest.shard.lo));
      rec.record(std::move(ex));
      spans_doc = rec.to_json();
    } else {
      partial = compute_partial(manifest, opts.threads, nullptr, {});
    }
    Json submit = Json::object()
                      .set("rpc", kDistRpcSchema)
                      .set("msg", "result")
                      .set("partial", std::move(partial));
    if (lease_ctx.enabled()) submit.set("spans", std::move(spans_doc));
    Json ack;
    if (!round_trip(opts.port, submit, &ack)) {
      stats.coordinator_gone = true;
      return stats;
    }
    const Json* accepted = ack.find("accepted");
    if (accepted && accepted->is_bool() && accepted->as_bool()) {
      stats.submitted++;
    } else {
      stats.rejected++;
    }
  }
}

}  // namespace liplib::dist
