#include "liplib/graph/analysis.hpp"

#include <algorithm>
#include <functional>

namespace liplib::graph {

Rational loop_throughput(std::size_t num_shells, std::size_t num_stations) {
  LIPLIB_EXPECT(num_shells > 0, "loop with no shells");
  return Rational(static_cast<std::int64_t>(num_shells),
                  static_cast<std::int64_t>(num_shells + num_stations));
}

Rational reconvergent_throughput(std::size_t m, std::size_t i) {
  LIPLIB_EXPECT(m > 0, "reconvergent formula with m == 0");
  LIPLIB_EXPECT(i <= m, "imbalance larger than loop length");
  return Rational(static_cast<std::int64_t>(m - i),
                  static_cast<std::int64_t>(m));
}

std::vector<CycleInfo> enumerate_cycles(const Topology& topo,
                                        std::size_t max_cycles) {
  // Adjacency over all nodes via channels; only process nodes can lie on
  // cycles (sources have no inputs, sinks no outputs).
  const std::size_t n = topo.nodes().size();
  std::vector<std::vector<ChannelId>> out(n);
  for (ChannelId c = 0; c < topo.channels().size(); ++c) {
    out[topo.channel(c).from.node].push_back(c);
  }

  std::vector<CycleInfo> cycles;
  std::vector<bool> on_path(n, false);
  std::vector<NodeId> path_nodes;
  std::vector<ChannelId> path_channels;

  // To report each cycle once, only enumerate cycles whose smallest node
  // id equals the DFS root.
  std::function<void(NodeId, NodeId)> dfs = [&](NodeId root, NodeId v) {
    for (ChannelId c : out[v]) {
      const NodeId w = topo.channel(c).to.node;
      if (w < root) continue;
      if (w == root) {
        LIPLIB_EXPECT(cycles.size() < max_cycles,
                      "cycle enumeration budget exceeded");
        CycleInfo info;
        info.nodes = path_nodes;
        info.shells = path_nodes.size();
        info.stations = 0;
        for (ChannelId pc : path_channels) {
          info.stations += topo.channel(pc).num_stations();
        }
        info.stations += topo.channel(c).num_stations();
        info.throughput = loop_throughput(info.shells, info.stations);
        cycles.push_back(std::move(info));
        continue;
      }
      if (on_path[w]) continue;
      on_path[w] = true;
      path_nodes.push_back(w);
      path_channels.push_back(c);
      dfs(root, w);
      path_channels.pop_back();
      path_nodes.pop_back();
      on_path[w] = false;
    }
  };

  for (NodeId root = 0; root < n; ++root) {
    if (topo.node(root).kind != NodeKind::kProcess) continue;
    on_path[root] = true;
    path_nodes.push_back(root);
    dfs(root, root);
    path_nodes.pop_back();
    on_path[root] = false;
  }
  return cycles;
}

namespace {

struct PathStats {
  std::size_t stations = 0;
  std::size_t intermediate_shells = 0;
};

/// Enumerates simple paths fork->join, accumulating stations and the
/// shells strictly between the endpoints.
void enumerate_paths(const Topology& topo,
                     const std::vector<std::vector<ChannelId>>& out,
                     NodeId fork, NodeId join, std::size_t max_paths,
                     std::vector<PathStats>& results) {
  std::vector<bool> on_path(topo.nodes().size(), false);
  PathStats cur;
  std::function<void(NodeId)> dfs = [&](NodeId v) {
    for (ChannelId c : out[v]) {
      const NodeId w = topo.channel(c).to.node;
      const std::size_t st = topo.channel(c).num_stations();
      if (w == join) {
        LIPLIB_EXPECT(results.size() < max_paths,
                      "path enumeration budget exceeded");
        results.push_back({cur.stations + st, cur.intermediate_shells});
        continue;
      }
      if (on_path[w] || topo.node(w).kind != NodeKind::kProcess) continue;
      on_path[w] = true;
      cur.stations += st;
      cur.intermediate_shells += 1;
      dfs(w);
      cur.intermediate_shells -= 1;
      cur.stations -= st;
      on_path[w] = false;
    }
  };
  on_path[fork] = true;
  dfs(fork);
}

}  // namespace

std::vector<ReconvergenceInfo> analyze_reconvergence(const Topology& topo,
                                                     std::size_t max_paths) {
  const std::size_t n = topo.nodes().size();
  std::vector<std::vector<ChannelId>> out(n);
  std::vector<std::size_t> in_deg(n, 0);
  for (ChannelId c = 0; c < topo.channels().size(); ++c) {
    out[topo.channel(c).from.node].push_back(c);
    in_deg[topo.channel(c).to.node]++;
  }

  std::vector<ReconvergenceInfo> found;
  for (NodeId fork = 0; fork < n; ++fork) {
    if (topo.node(fork).kind == NodeKind::kSink) continue;
    if (out[fork].size() < 2) continue;  // cannot start two branches
    for (NodeId join = 0; join < n; ++join) {
      if (topo.node(join).kind != NodeKind::kProcess) continue;
      if (in_deg[join] < 2 || join == fork) continue;
      std::vector<PathStats> paths;
      enumerate_paths(topo, out, fork, join, max_paths, paths);
      if (paths.size() < 2) continue;
      ReconvergenceInfo info;
      info.fork = fork;
      info.join = join;
      info.min_stations = paths.front().stations;
      info.max_stations = paths.front().stations;
      std::size_t heavy_shells = paths.front().intermediate_shells;
      for (const auto& p : paths) {
        if (p.stations < info.min_stations) info.min_stations = p.stations;
        if (p.stations > info.max_stations ||
            (p.stations == info.max_stations &&
             p.intermediate_shells > heavy_shells)) {
          info.max_stations = p.stations;
          heavy_shells = p.intermediate_shells;
        }
      }
      // The paper counts the shells on the heaviest branch as part of the
      // implicit loop: the intermediate shells plus the join shell.
      info.heavy_path_shells = heavy_shells + 1;
      found.push_back(info);
    }
  }
  return found;
}

namespace {

struct PathDetail {
  std::vector<ChannelId> channels;
  std::vector<NodeId> interior;  // nodes strictly between fork and join
};

/// Enumerates simple paths fork->join with full channel/interior detail.
void enumerate_paths_detailed(const Topology& topo,
                              const std::vector<std::vector<ChannelId>>& out,
                              NodeId fork, NodeId join,
                              std::size_t max_paths,
                              std::vector<PathDetail>& results) {
  std::vector<bool> on_path(topo.nodes().size(), false);
  PathDetail cur;
  std::function<void(NodeId)> dfs = [&](NodeId v) {
    for (ChannelId c : out[v]) {
      const NodeId w = topo.channel(c).to.node;
      if (w == join) {
        LIPLIB_EXPECT(results.size() < max_paths,
                      "path enumeration budget exceeded");
        PathDetail done = cur;
        done.channels.push_back(c);
        results.push_back(std::move(done));
        continue;
      }
      if (on_path[w] || topo.node(w).kind != NodeKind::kProcess) continue;
      on_path[w] = true;
      cur.channels.push_back(c);
      cur.interior.push_back(w);
      dfs(w);
      cur.interior.pop_back();
      cur.channels.pop_back();
      on_path[w] = false;
    }
  };
  on_path[fork] = true;
  dfs(fork);
}

bool interiors_disjoint(const PathDetail& a, const PathDetail& b) {
  for (NodeId x : a.interior) {
    for (NodeId y : b.interior) {
      if (x == y) return false;
    }
  }
  return true;
}

}  // namespace

std::vector<ImplicitLoopInfo> analyze_implicit_loops(const Topology& topo,
                                                     std::size_t max_paths) {
  const std::size_t n = topo.nodes().size();
  std::vector<std::vector<ChannelId>> out(n);
  std::vector<std::size_t> in_deg(n, 0);
  for (ChannelId c = 0; c < topo.channels().size(); ++c) {
    out[topo.channel(c).from.node].push_back(c);
    in_deg[topo.channel(c).to.node]++;
  }

  std::vector<ImplicitLoopInfo> loops;
  for (NodeId fork = 0; fork < n; ++fork) {
    if (topo.node(fork).kind == NodeKind::kSink) continue;
    if (out[fork].size() < 2) continue;
    for (NodeId join = 0; join < n; ++join) {
      if (topo.node(join).kind != NodeKind::kProcess) continue;
      if (in_deg[join] < 2 || join == fork) continue;
      std::vector<PathDetail> paths;
      enumerate_paths_detailed(topo, out, fork, join, max_paths, paths);
      if (paths.size() < 2) continue;
      for (std::size_t f = 0; f < paths.size(); ++f) {
        for (std::size_t b = 0; b < paths.size(); ++b) {
          if (f == b) continue;
          if (!interiors_disjoint(paths[f], paths[b])) continue;
          ImplicitLoopInfo info;
          info.fork = fork;
          info.join = join;
          for (ChannelId c : paths[f].channels) {
            info.registers_fwd += topo.channel(c).num_stations() + 1;
            info.tokens_fwd += 1;
          }
          for (ChannelId c : paths[b].channels) {
            info.slack_back +=
                2 * topo.channel(c).num_full() + topo.channel(c).num_half();
            info.stops_back += topo.channel(c).num_full();
          }
          loops.push_back(info);
        }
      }
    }
  }
  return loops;
}

Rational exact_implicit_loop_bound(const Topology& topo,
                                   std::size_t max_paths) {
  Rational best(1);
  for (const auto& loop : analyze_implicit_loops(topo, max_paths)) {
    const auto t = loop.throughput();
    if (t < best) best = t;
  }
  return best;
}

ThroughputPrediction predict_throughput(const Topology& topo) {
  ThroughputPrediction pred;
  pred.cycles = enumerate_cycles(topo);
  for (const auto& c : pred.cycles) {
    if (c.throughput < pred.cycle_bound) pred.cycle_bound = c.throughput;
  }
  pred.reconvergences = analyze_reconvergence(topo);
  for (const auto& r : pred.reconvergences) {
    if (r.throughput() < pred.reconvergence_bound) {
      pred.reconvergence_bound = r.throughput();
    }
  }
  return pred;
}

std::vector<StopCycleInfo> find_stop_cycles(const Topology& topo,
                                            std::size_t max_cycles) {
  // A cycle's stop path is combinational iff none of its channels
  // carries a full station; enumerate cycles over the subgraph of
  // full-station-free channels only.
  Topology pruned;
  // Rebuild with the same nodes; keep only channels with zero full
  // stations.  Node ids are preserved by construction order.
  for (const auto& node : topo.nodes()) {
    switch (node.kind) {
      case NodeKind::kProcess:
        pruned.add_process(node.name, node.num_inputs, node.num_outputs);
        break;
      case NodeKind::kSource:
        pruned.add_source(node.name);
        break;
      case NodeKind::kSink:
        pruned.add_sink(node.name);
        break;
    }
  }
  for (const auto& ch : topo.channels()) {
    if (ch.num_full() == 0) {
      pruned.connect(ch.from, ch.to, ch.stations);
    }
  }
  std::vector<StopCycleInfo> out;
  for (const auto& c : enumerate_cycles(pruned, max_cycles)) {
    out.push_back({c.nodes, c.stations});
  }
  return out;
}

namespace {

std::uint64_t total_positions(const Topology& topo) {
  std::uint64_t pos = 0;
  for (const auto& node : topo.nodes()) {
    if (node.kind == NodeKind::kProcess) pos += node.num_outputs;
    if (node.kind == NodeKind::kSource) pos += 1;
  }
  for (const auto& ch : topo.channels()) {
    pos += 2 * ch.num_full() + ch.num_half();
  }
  return pos;
}

}  // namespace

std::uint64_t transient_bound(const Topology& topo) {
  // Conservative but predictable-upfront, as the paper requires: the
  // protocol state is made of the register positions, and empirically the
  // transient is close to the longest register path; a quadratic envelope
  // in the position count covers every topology class we generate.
  const std::uint64_t p = total_positions(topo);
  return 2 * p * p + 16;
}

std::optional<std::uint64_t> longest_register_path(const Topology& topo) {
  if (!topo.is_feedforward()) return std::nullopt;
  // Longest path over the channel DAG with weight = stations + 1 (the
  // producing node's output register).
  const std::size_t n = topo.nodes().size();
  std::vector<std::size_t> in_deg(n, 0);
  std::vector<std::vector<ChannelId>> out(n);
  for (ChannelId c = 0; c < topo.channels().size(); ++c) {
    out[topo.channel(c).from.node].push_back(c);
    in_deg[topo.channel(c).to.node]++;
  }
  std::vector<NodeId> order;
  std::vector<std::size_t> deg = in_deg;
  for (NodeId v = 0; v < n; ++v) {
    if (deg[v] == 0) order.push_back(v);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (ChannelId c : out[order[i]]) {
      if (--deg[topo.channel(c).to.node] == 0) {
        order.push_back(topo.channel(c).to.node);
      }
    }
  }
  LIPLIB_ENSURE(order.size() == n, "feedforward topology failed toposort");
  std::vector<std::uint64_t> dist(n, 0);
  std::uint64_t best = 0;
  for (NodeId v : order) {
    for (ChannelId c : out[v]) {
      const auto& ch = topo.channel(c);
      const std::uint64_t d = dist[v] + ch.num_stations() + 1;
      if (d > dist[ch.to.node]) dist[ch.to.node] = d;
      if (d > best) best = d;
    }
  }
  return best;
}

}  // namespace liplib::graph
