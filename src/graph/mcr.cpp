#include "liplib/graph/mcr.hpp"

#include <vector>

#include "liplib/graph/analysis.hpp"

namespace liplib::graph {

namespace {

struct Edge {
  std::size_t from;
  std::size_t to;
  std::int64_t tokens;  // 1 per edge (the producing shell's init token)
  std::int64_t length;  // 1 + relay stations on the channel
};

/// Bellman-Ford negative-cycle test on weights w_e = tokens*q - length*p,
/// i.e. "exists cycle with ratio < p/q" (strictly, when result < 0) —
/// all-zero initialization detects negative cycles anywhere.
/// Returns the final potentials when no negative cycle exists.
bool has_negative_cycle(const std::vector<Edge>& edges, std::size_t n,
                        std::int64_t p, std::int64_t q,
                        std::vector<std::int64_t>* potentials_out) {
  std::vector<std::int64_t> dist(n, 0);
  bool changed = false;
  for (std::size_t round = 0; round < n; ++round) {
    changed = false;
    for (const auto& e : edges) {
      const std::int64_t w = e.tokens * q - e.length * p;
      if (dist[e.from] + w < dist[e.to]) {
        dist[e.to] = dist[e.from] + w;
        changed = true;
      }
    }
    if (!changed) break;
  }
  if (changed) return true;  // still relaxing after n rounds
  if (potentials_out) *potentials_out = std::move(dist);
  return false;
}

/// True when the tight subgraph (reduced weight zero under `pot`)
/// contains a directed cycle — i.e. some cycle attains ratio p/q exactly.
bool has_zero_cycle(const std::vector<Edge>& edges, std::size_t n,
                    std::int64_t p, std::int64_t q,
                    const std::vector<std::int64_t>& pot) {
  std::vector<std::vector<std::size_t>> tight(n);
  for (const auto& e : edges) {
    const std::int64_t w = e.tokens * q - e.length * p;
    if (pot[e.from] + w == pot[e.to]) tight[e.from].push_back(e.to);
  }
  // Cycle detection by iterative coloring.
  std::vector<int> color(n, 0);  // 0 white, 1 gray, 2 black
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  for (std::size_t root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    stack.push_back({root, 0});
    color[root] = 1;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      if (i < tight[v].size()) {
        const std::size_t w = tight[v][i++];
        if (color[w] == 1) return true;
        if (color[w] == 0) {
          color[w] = 1;
          stack.push_back({w, 0});
        }
      } else {
        color[v] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace

std::optional<Rational> min_cycle_ratio(const Topology& topo) {
  if (topo.is_feedforward()) return std::nullopt;

  const std::size_t n = topo.nodes().size();
  std::vector<Edge> edges;
  std::int64_t total_length = 0;
  for (const auto& ch : topo.channels()) {
    const std::int64_t len =
        1 + static_cast<std::int64_t>(ch.num_stations());
    edges.push_back({ch.from.node, ch.to.node, 1, len});
    total_length += len;
  }

  // The optimum is p*/q* with 1 <= p* <= q* <= total_length.  Binary
  // search on the ratio with exact rational tests: after enough halving
  // the interval contains exactly one candidate with denominator within
  // bound, recovered by the Stern-Brocot (mediant) walk.
  //   invariant: no cycle ratio < lo;  some cycle ratio <= hi.
  Rational lo(0);
  Rational hi(1);
  // hi starts feasible: every cycle has ratio <= 1 (tokens <= length).
  const std::int64_t max_den = total_length;

  // Degenerate optimum at 1 (a cycle with no stations at all — only
  // possible on unvalidated topologies, but handle it exactly).
  {
    std::vector<std::int64_t> pot;
    if (!has_negative_cycle(edges, n, 1, 1, &pot) &&
        has_zero_cycle(edges, n, 1, 1, pot)) {
      return Rational(1);
    }
  }

  // Stern-Brocot descent: narrow [lo, hi] keeping denominators small.
  // Each step tests the mediant; this terminates because the optimum is a
  // fraction with denominator <= max_den and the mediant walk visits
  // every best approximation on the way (at most ~2*max_den steps).
  for (std::int64_t iter = 0; iter < 4 * max_den + 64; ++iter) {
    const Rational med(lo.num() + hi.num(), lo.den() + hi.den());
    std::vector<std::int64_t> pot;
    if (has_negative_cycle(edges, n, med.num(), med.den(), &pot)) {
      hi = med;  // some cycle strictly below med
      continue;
    }
    // No cycle strictly below med: med is a lower bound; is it attained?
    if (has_zero_cycle(edges, n, med.num(), med.den(), pot)) {
      return med;
    }
    lo = med;
    if (lo.den() > max_den && hi.den() > max_den) break;
  }
  // Unreachable for well-formed inputs; fall back to the enumeration.
  Rational best(1);
  for (const auto& c : enumerate_cycles(topo)) {
    if (c.throughput < best) best = c.throughput;
  }
  return best;
}

}  // namespace liplib::graph
