#include "liplib/graph/topology.hpp"

#include <algorithm>
#include <sstream>

namespace liplib::graph {

std::size_t Channel::num_full() const {
  return static_cast<std::size_t>(
      std::count(stations.begin(), stations.end(), RsKind::kFull));
}

std::size_t Channel::num_half() const {
  return static_cast<std::size_t>(
      std::count(stations.begin(), stations.end(), RsKind::kHalf));
}

std::string ValidationReport::to_string() const {
  std::ostringstream os;
  for (const auto& i : issues) {
    os << (i.severity == ValidationIssue::Severity::kError ? "error: "
                                                           : "warning: ")
       << i.message << '\n';
  }
  return os.str();
}

NodeId Topology::add_process(std::string name, std::size_t num_inputs,
                             std::size_t num_outputs) {
  LIPLIB_EXPECT(num_inputs + num_outputs > 0, "process with no ports");
  nodes_.push_back(
      {std::move(name), NodeKind::kProcess, num_inputs, num_outputs});
  return nodes_.size() - 1;
}

NodeId Topology::add_source(std::string name) {
  nodes_.push_back({std::move(name), NodeKind::kSource, 0, 1});
  return nodes_.size() - 1;
}

NodeId Topology::add_sink(std::string name) {
  nodes_.push_back({std::move(name), NodeKind::kSink, 1, 0});
  return nodes_.size() - 1;
}

void Topology::check_out(OutRef r) const {
  LIPLIB_EXPECT(r.node < nodes_.size(), "output ref: node out of range");
  LIPLIB_EXPECT(r.port < nodes_[r.node].num_outputs,
                "output ref: port out of range for node " +
                    nodes_[r.node].name);
}

void Topology::check_in(InRef r) const {
  LIPLIB_EXPECT(r.node < nodes_.size(), "input ref: node out of range");
  LIPLIB_EXPECT(
      r.port < nodes_[r.node].num_inputs,
      "input ref: port out of range for node " + nodes_[r.node].name);
}

ChannelId Topology::connect(OutRef from, InRef to,
                            std::vector<RsKind> stations) {
  check_out(from);
  check_in(to);
  for (const auto& c : channels_) {
    LIPLIB_EXPECT(!(c.to.node == to.node && c.to.port == to.port),
                  "input port of " + nodes_[to.node].name + " driven twice");
  }
  channels_.push_back({from, to, std::move(stations)});
  return channels_.size() - 1;
}

std::vector<ChannelId> Topology::channels_from(NodeId n) const {
  std::vector<ChannelId> out;
  for (ChannelId c = 0; c < channels_.size(); ++c) {
    if (channels_[c].from.node == n) out.push_back(c);
  }
  return out;
}

std::vector<ChannelId> Topology::channels_into(NodeId n) const {
  std::vector<ChannelId> out;
  for (ChannelId c = 0; c < channels_.size(); ++c) {
    if (channels_[c].to.node == n) out.push_back(c);
  }
  return out;
}

std::optional<ChannelId> Topology::channel_into(InRef in) const {
  for (ChannelId c = 0; c < channels_.size(); ++c) {
    if (channels_[c].to.node == in.node && channels_[c].to.port == in.port) {
      return c;
    }
  }
  return std::nullopt;
}

std::vector<ChannelId> Topology::channels_of(OutRef out) const {
  std::vector<ChannelId> r;
  for (ChannelId c = 0; c < channels_.size(); ++c) {
    if (channels_[c].from.node == out.node &&
        channels_[c].from.port == out.port) {
      r.push_back(c);
    }
  }
  return r;
}

std::size_t Topology::total_stations() const {
  std::size_t n = 0;
  for (const auto& c : channels_) n += c.num_stations();
  return n;
}

std::size_t Topology::total_full_stations() const {
  std::size_t n = 0;
  for (const auto& c : channels_) n += c.num_full();
  return n;
}

std::size_t Topology::total_half_stations() const {
  std::size_t n = 0;
  for (const auto& c : channels_) n += c.num_half();
  return n;
}

std::size_t Topology::num_processes() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.kind == NodeKind::kProcess) ++n;
  }
  return n;
}

std::size_t Topology::num_sources() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.kind == NodeKind::kSource) ++n;
  }
  return n;
}

std::size_t Topology::num_sinks() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.kind == NodeKind::kSink) ++n;
  }
  return n;
}

std::vector<std::vector<NodeId>> Topology::process_sccs() const {
  // Iterative Tarjan over all nodes; sources/sinks end up in singleton
  // components which callers can ignore.
  const std::size_t n = nodes_.size();
  std::vector<std::vector<NodeId>> adj(n);
  for (const auto& c : channels_) adj[c.from.node].push_back(c.to.node);

  std::vector<int> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::vector<std::vector<NodeId>> sccs;
  int next_index = 0;

  struct Frame {
    NodeId v;
    std::size_t child = 0;
  };

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < adj[f.v].size()) {
        NodeId w = adj[f.v][f.child++];
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          std::vector<NodeId> comp;
          for (;;) {
            NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp.push_back(w);
            if (w == f.v) break;
          }
          sccs.push_back(std::move(comp));
        }
        NodeId v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  return sccs;
}

std::vector<bool> Topology::channels_on_cycles() const {
  const auto sccs = process_sccs();
  std::vector<std::size_t> comp_of(nodes_.size(), 0);
  std::vector<std::size_t> comp_size(sccs.size(), 0);
  for (std::size_t i = 0; i < sccs.size(); ++i) {
    comp_size[i] = sccs[i].size();
    for (NodeId v : sccs[i]) comp_of[v] = i;
  }
  // A channel lies on a directed cycle iff both endpoints are in the same
  // SCC and that SCC is nontrivial (size > 1, or size 1 with a self loop).
  std::vector<bool> on_cycle(channels_.size(), false);
  for (ChannelId c = 0; c < channels_.size(); ++c) {
    const auto& ch = channels_[c];
    if (ch.from.node == ch.to.node) {
      on_cycle[c] = true;
      continue;
    }
    if (comp_of[ch.from.node] == comp_of[ch.to.node] &&
        comp_size[comp_of[ch.from.node]] > 1) {
      on_cycle[c] = true;
    }
  }
  return on_cycle;
}

bool Topology::is_feedforward() const {
  const auto on_cycle = channels_on_cycles();
  return std::none_of(on_cycle.begin(), on_cycle.end(),
                      [](bool b) { return b; });
}

// Topology::validate() is defined in src/lint/validate_compat.cpp: it is
// the structural subset of the lint engine, kept there so the graph
// library has no dependency on liplib_lint.

std::string Topology::to_dot() const {
  std::ostringstream os;
  os << "digraph lid {\n  rankdir=LR;\n";
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    const char* shape = "box";
    if (nodes_[v].kind == NodeKind::kSource) shape = "invtriangle";
    if (nodes_[v].kind == NodeKind::kSink) shape = "triangle";
    os << "  n" << v << " [label=\"" << nodes_[v].name << "\" shape=" << shape
       << "];\n";
  }
  for (ChannelId c = 0; c < channels_.size(); ++c) {
    const auto& ch = channels_[c];
    std::string label;
    for (RsKind k : ch.stations) label += (k == RsKind::kFull ? 'F' : 'H');
    os << "  n" << ch.from.node << " -> n" << ch.to.node << " [label=\""
       << label << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace liplib::graph
