#include "liplib/graph/netlist_io.hpp"

#include <istream>
#include <map>
#include <sstream>

namespace liplib::graph {

namespace {

/// The line being parsed: its number plus the text as read, so parse
/// errors can show the offending line with a caret under the bad token.
struct LineRef {
  std::size_t number = 0;
  const std::string* text = nullptr;
};

[[noreturn]] void fail(const LineRef& line, const std::string& msg,
                       const std::string& token = {}) {
  std::string out = "netlist line " + std::to_string(line.number) + ": " + msg;
  if (line.text != nullptr && !line.text->empty()) {
    out += "\n  " + *line.text;
    std::size_t col =
        token.empty() ? std::string::npos : line.text->find(token);
    if (col == std::string::npos) col = line.text->find_first_not_of(" \t");
    if (col != std::string::npos) {
      // Pad with the line's own tabs so the caret lines up in terminals.
      std::string pad;
      for (std::size_t i = 0; i < col; ++i) {
        pad += (*line.text)[i] == '\t' ? '\t' : ' ';
      }
      const std::size_t width = token.empty() ? 1 : token.size();
      out += "\n  " + pad + "^" + std::string(width - 1, '~');
    }
  }
  throw ApiError(out);
}

/// Splits "name.port" into its parts.
std::pair<std::string, std::size_t> parse_port_ref(const LineRef& line,
                                                   const std::string& tok) {
  const auto dot = tok.rfind('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == tok.size()) {
    fail(line, "expected <name>.<port>, got '" + tok + "'", tok);
  }
  const std::string name = tok.substr(0, dot);
  const std::string port_str = tok.substr(dot + 1);
  std::size_t port = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9') {
      fail(line, "bad port number in '" + tok + "'", tok);
    }
    port = port * 10 + static_cast<std::size_t>(c - '0');
  }
  return {name, port};
}

std::size_t parse_count(const LineRef& line, const std::string& tok,
                        const char* what) {
  if (tok.empty()) fail(line, std::string("missing ") + what);
  std::size_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') {
      fail(line, std::string("bad ") + what + " '" + tok + "'", tok);
    }
    v = v * 10 + static_cast<std::size_t>(c - '0');
  }
  return v;
}

RsKind parse_station(const LineRef& line, const std::string& tok) {
  if (tok == "F" || tok == "f" || tok == "full") return RsKind::kFull;
  if (tok == "H" || tok == "h" || tok == "half") return RsKind::kHalf;
  fail(line, "unknown relay station kind '" + tok + "' (use F or H)", tok);
}

}  // namespace

namespace {

AnnotatedNetlist parse_impl(std::istream& in, bool allow_annotations) {
  AnnotatedNetlist result;
  Topology& topo = result.topo;
  std::map<std::string, NodeId> by_name;
  std::string raw;
  std::string original;  // the line as read, for diagnostics
  std::size_t line_no = 0;

  auto declare = [&](const LineRef& line, const std::string& name,
                     NodeId id) {
    if (!by_name.emplace(name, id).second) {
      fail(line, "duplicate node name '" + name + "'", name);
    }
  };
  auto lookup = [&](const LineRef& line, const std::string& name) {
    const auto it = by_name.find(name);
    if (it == by_name.end()) fail(line, "unknown node '" + name + "'", name);
    return it->second;
  };

  while (std::getline(in, raw)) {
    ++line_no;
    original = raw;
    const LineRef line{line_no, &original};
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream ls(raw);
    std::string kw;
    if (!(ls >> kw)) continue;  // blank or comment-only line

    auto take_annotation = [&](NodeId id) {
      std::string extra;
      if (ls >> extra) {
        if (!allow_annotations) {
          fail(line, "unexpected token '" + extra + "'", extra);
        }
        result.node_annotation.resize(topo.nodes().size());
        result.node_annotation[id] = extra;
        std::string more;
        if (ls >> more) fail(line, "unexpected token '" + more + "'", more);
      }
    };
    if (kw == "source" || kw == "sink") {
      std::string name;
      if (!(ls >> name)) fail(line, kw + " needs a name", kw);
      const NodeId id =
          kw == "source" ? topo.add_source(name) : topo.add_sink(name);
      declare(line, name, id);
      take_annotation(id);
    } else if (kw == "process") {
      std::string name, ins, outs;
      if (!(ls >> name >> ins >> outs)) {
        fail(line, "process needs <name> <num_inputs> <num_outputs>", kw);
      }
      const auto ni = parse_count(line, ins, "input count");
      const auto no = parse_count(line, outs, "output count");
      if (ni + no == 0) fail(line, "process with no ports", name);
      const NodeId id = topo.add_process(name, ni, no);
      declare(line, name, id);
      take_annotation(id);
    } else if (kw == "channel") {
      std::string from_tok, arrow, to_tok;
      if (!(ls >> from_tok >> arrow >> to_tok) || arrow != "->") {
        fail(line, "channel needs <name>.<port> -> <name>.<port>",
             arrow.empty() ? kw : arrow);
      }
      const auto [from_name, from_port] = parse_port_ref(line, from_tok);
      const auto [to_name, to_port] = parse_port_ref(line, to_tok);
      std::vector<RsKind> stations;
      std::string tok;
      if (ls >> tok) {
        if (tok != ":") fail(line, "expected ':' before stations", tok);
        while (ls >> tok) stations.push_back(parse_station(line, tok));
      }
      const NodeId from = lookup(line, from_name);
      const NodeId to = lookup(line, to_name);
      try {
        topo.connect({from, from_port}, {to, to_port}, std::move(stations));
      } catch (const ApiError& e) {
        fail(line, e.what(), kw);
      }
    } else {
      fail(line, "unknown keyword '" + kw + "'", kw);
    }
  }
  result.node_annotation.resize(topo.nodes().size());
  return result;
}

}  // namespace

Topology parse_netlist(std::istream& in) {
  return parse_impl(in, /*allow_annotations=*/false).topo;
}

Topology parse_netlist_string(const std::string& text) {
  std::istringstream in(text);
  return parse_netlist(in);
}

AnnotatedNetlist parse_netlist_annotated(std::istream& in) {
  return parse_impl(in, /*allow_annotations=*/true);
}

AnnotatedNetlist parse_netlist_annotated_string(const std::string& text) {
  std::istringstream in(text);
  return parse_netlist_annotated(in);
}

std::string write_netlist(const Topology& topo) {
  std::ostringstream os;
  for (const auto& node : topo.nodes()) {
    switch (node.kind) {
      case NodeKind::kSource:
        os << "source " << node.name << "\n";
        break;
      case NodeKind::kSink:
        os << "sink " << node.name << "\n";
        break;
      case NodeKind::kProcess:
        os << "process " << node.name << ' ' << node.num_inputs << ' '
           << node.num_outputs << "\n";
        break;
    }
  }
  for (const auto& ch : topo.channels()) {
    os << "channel " << topo.node(ch.from.node).name << '.' << ch.from.port
       << " -> " << topo.node(ch.to.node).name << '.' << ch.to.port;
    if (!ch.stations.empty()) {
      os << " :";
      for (RsKind k : ch.stations) {
        os << ' ' << (k == RsKind::kFull ? 'F' : 'H');
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace liplib::graph
