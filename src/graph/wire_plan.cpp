#include "liplib/graph/wire_plan.hpp"

#include <cmath>

#include "liplib/graph/equalize.hpp"

namespace liplib::graph {

WirePlanResult plan_wire_pipelining(Topology& topo,
                                    const std::vector<double>& lengths,
                                    const WirePlanOptions& options) {
  LIPLIB_EXPECT(lengths.size() == topo.channels().size(),
                "one wire length per channel required");
  LIPLIB_EXPECT(options.reach_per_cycle > 0, "reach must be positive");

  WirePlanResult result;
  const auto on_cycle = topo.channels_on_cycles();

  for (ChannelId c = 0; c < topo.channels().size(); ++c) {
    LIPLIB_EXPECT(lengths[c] >= 0, "negative wire length");
    const double hops_needed = lengths[c] / options.reach_per_cycle;
    std::size_t need =
        hops_needed <= 1.0
            ? 0
            : static_cast<std::size_t>(std::ceil(hops_needed)) - 1;
    auto& ch = topo.channel_mut(c);
    // The structural rule still applies even to short wires: a channel
    // between two shells needs at least one memory element.
    const bool shell_to_shell =
        topo.node(ch.from.node).kind == NodeKind::kProcess &&
        topo.node(ch.to.node).kind == NodeKind::kProcess;
    if (shell_to_shell && need == 0 && ch.stations.empty()) need = 1;
    while (ch.stations.size() < need) {
      const RsKind kind = (!on_cycle[c] && options.prefer_half_off_cycle)
                              ? RsKind::kHalf
                              : RsKind::kFull;
      ch.stations.push_back(kind);
      ++result.stations_inserted;
    }
  }

  if (options.equalize && topo.is_feedforward()) {
    result.spare_inserted = equalize_paths(topo, RsKind::kFull);
  }

  for (const auto& ch : topo.channels()) {
    result.full_count += ch.num_full();
    result.half_count += ch.num_half();
  }
  return result;
}

}  // namespace liplib::graph
