#include "liplib/graph/equalize.hpp"

namespace liplib::graph {

EqualizationPlan plan_equalization(const Topology& topo) {
  LIPLIB_EXPECT(topo.is_feedforward(),
                "path equalization requires a feedforward topology");
  const std::size_t n = topo.nodes().size();
  std::vector<std::vector<ChannelId>> out(n);
  std::vector<std::size_t> deg(n, 0);
  for (ChannelId c = 0; c < topo.channels().size(); ++c) {
    out[topo.channel(c).from.node].push_back(c);
    deg[topo.channel(c).to.node]++;
  }

  std::vector<NodeId> order;
  for (NodeId v = 0; v < n; ++v) {
    if (deg[v] == 0) order.push_back(v);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (ChannelId c : out[order[i]]) {
      if (--deg[topo.channel(c).to.node] == 0) {
        order.push_back(topo.channel(c).to.node);
      }
    }
  }
  LIPLIB_ENSURE(order.size() == n, "feedforward topology failed toposort");

  EqualizationPlan plan;
  plan.level.assign(n, 0);
  // Longest-path levels over *station* counts: level(v) = max over
  // in-channels of level(u) + stations(c).  Shells do not count — a
  // shell's output register is initialized with a valid token, so it adds
  // latency but no void; only relay stations (initialized void) create
  // the imbalance `i` of the paper's formula.  This matches the paper's
  // definition of i as "the difference of relay stations between the
  // feedforward branches".
  for (NodeId v : order) {
    for (ChannelId c : out[v]) {
      const auto& ch = topo.channel(c);
      const std::uint64_t lv = plan.level[v] + ch.num_stations();
      if (lv > plan.level[ch.to.node]) plan.level[ch.to.node] = lv;
    }
  }
  // Slack on each channel becomes spare stations.
  plan.stations_to_add.assign(topo.channels().size(), 0);
  for (ChannelId c = 0; c < topo.channels().size(); ++c) {
    const auto& ch = topo.channel(c);
    const std::uint64_t have = plan.level[ch.from.node] + ch.num_stations();
    const std::uint64_t want = plan.level[ch.to.node];
    LIPLIB_ENSURE(want >= have, "levelling produced negative slack");
    plan.stations_to_add[c] = static_cast<std::size_t>(want - have);
    plan.total_added += plan.stations_to_add[c];
  }
  return plan;
}

std::size_t apply_equalization(Topology& topo, const EqualizationPlan& plan,
                               RsKind kind) {
  LIPLIB_EXPECT(plan.stations_to_add.size() == topo.channels().size(),
                "plan does not match topology");
  std::size_t added = 0;
  for (ChannelId c = 0; c < topo.channels().size(); ++c) {
    for (std::size_t k = 0; k < plan.stations_to_add[c]; ++k) {
      topo.channel_mut(c).stations.push_back(kind);
      ++added;
    }
  }
  return added;
}

std::size_t equalize_paths(Topology& topo, RsKind kind) {
  const auto plan = plan_equalization(topo);
  return apply_equalization(topo, plan, kind);
}

}  // namespace liplib::graph
