#include "liplib/graph/generators.hpp"

namespace liplib::graph {

namespace {

std::vector<RsKind> chain(std::size_t n, RsKind kind) {
  return std::vector<RsKind>(n, kind);
}

}  // namespace

Generated make_pipeline(std::size_t num_processes,
                        std::size_t stations_per_channel, RsKind kind) {
  LIPLIB_EXPECT(num_processes >= 1, "pipeline needs at least one process");
  Generated g;
  const NodeId src = g.topo.add_source("src");
  g.sources.push_back(src);
  NodeId prev = src;
  for (std::size_t i = 0; i < num_processes; ++i) {
    const NodeId p = g.topo.add_process("P" + std::to_string(i), 1, 1);
    g.processes.push_back(p);
    g.topo.connect({prev, 0}, {p, 0}, chain(stations_per_channel, kind));
    prev = p;
  }
  const NodeId snk = g.topo.add_sink("out");
  g.sinks.push_back(snk);
  g.topo.connect({prev, 0}, {snk, 0}, chain(stations_per_channel, kind));
  return g;
}

Generated make_tree(std::size_t depth, std::size_t stations_per_channel,
                    RsKind kind) {
  LIPLIB_EXPECT(depth >= 1, "tree needs depth >= 1");
  Generated g;
  // Level 0: 2^depth sources.
  std::vector<NodeId> level;
  const std::size_t leaves = std::size_t{1} << depth;
  for (std::size_t i = 0; i < leaves; ++i) {
    const NodeId s = g.topo.add_source("src" + std::to_string(i));
    g.sources.push_back(s);
    level.push_back(s);
  }
  // Reduction levels of 2-input joins.
  std::size_t name = 0;
  while (level.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const NodeId j = g.topo.add_process("J" + std::to_string(name++), 2, 1);
      g.processes.push_back(j);
      g.topo.connect({level[i], 0}, {j, 0}, chain(stations_per_channel, kind));
      g.topo.connect({level[i + 1], 0}, {j, 1},
                     chain(stations_per_channel, kind));
      next.push_back(j);
    }
    level = std::move(next);
  }
  const NodeId snk = g.topo.add_sink("out");
  g.sinks.push_back(snk);
  g.topo.connect({level[0], 0}, {snk, 0}, chain(stations_per_channel, kind));
  return g;
}

Generated make_reconvergent(std::size_t short_stations,
                            std::size_t long_shells,
                            std::size_t long_stations_per_hop, RsKind kind) {
  LIPLIB_EXPECT(short_stations >= 1 && long_stations_per_hop >= 1,
                "shell-to-shell channels need at least one station");
  Generated g;
  const NodeId src = g.topo.add_source("src");
  g.sources.push_back(src);
  const NodeId a = g.topo.add_process("A", 1, 2);
  g.processes.push_back(a);
  g.fork = a;
  g.topo.connect({src, 0}, {a, 0});

  const NodeId c = g.topo.add_process("C", 2, 1);
  // Long branch: A -> W1 -> ... -> Wk -> C (input 0 of the join).
  NodeId prev = a;
  std::size_t prev_port = 0;
  for (std::size_t i = 0; i < long_shells; ++i) {
    const NodeId w = g.topo.add_process("W" + std::to_string(i), 1, 1);
    g.processes.push_back(w);
    g.topo.connect({prev, prev_port}, {w, 0},
                   chain(long_stations_per_hop, kind));
    prev = w;
    prev_port = 0;
  }
  g.topo.connect({prev, prev_port}, {c, 0},
                 chain(long_stations_per_hop, kind));
  // Short branch: A (port 1) -> C (input 1).
  g.topo.connect({a, 1}, {c, 1}, chain(short_stations, kind));
  g.processes.push_back(c);
  g.join = c;

  const NodeId snk = g.topo.add_sink("out");
  g.sinks.push_back(snk);
  g.topo.connect({c, 0}, {snk, 0});
  return g;
}

Generated make_fig1() {
  // Shells A, B, C; channels A->B, B->C (long branch) and A->C (short
  // branch), one full relay station each: i = 2-1 = 1, m = 3 stations +
  // shells {B, C} = 5, T = (m-i)/m = 4/5.
  return make_reconvergent(/*short_stations=*/1, /*long_shells=*/1,
                           /*long_stations_per_hop=*/1, RsKind::kFull);
}

Generated make_closed_ring(std::vector<std::size_t> stations_per_channel,
                           RsKind kind) {
  LIPLIB_EXPECT(!stations_per_channel.empty(), "ring needs >= 1 shell");
  Generated g;
  const std::size_t s = stations_per_channel.size();
  for (std::size_t i = 0; i < s; ++i) {
    g.processes.push_back(
        g.topo.add_process("L" + std::to_string(i), 1, 1));
  }
  std::vector<ChannelId> loop;
  for (std::size_t i = 0; i < s; ++i) {
    loop.push_back(g.topo.connect({g.processes[i], 0},
                                  {g.processes[(i + 1) % s], 0},
                                  chain(stations_per_channel[i], kind)));
  }
  g.loops.push_back(std::move(loop));
  return g;
}

Generated make_ring_with_tap(std::size_t ab_stations,
                             std::size_t ba_stations, RsKind kind) {
  LIPLIB_EXPECT(ab_stations >= 1 && ba_stations >= 1,
                "shell-to-shell channels need at least one station");
  Generated g;
  const NodeId a = g.topo.add_process("A", 1, 2);
  const NodeId b = g.topo.add_process("B", 1, 1);
  g.processes = {a, b};
  std::vector<ChannelId> loop;
  loop.push_back(g.topo.connect({a, 0}, {b, 0}, chain(ab_stations, kind)));
  loop.push_back(g.topo.connect({b, 0}, {a, 0}, chain(ba_stations, kind)));
  g.loops.push_back(std::move(loop));
  const NodeId snk = g.topo.add_sink("out");
  g.sinks.push_back(snk);
  g.topo.connect({a, 1}, {snk, 0});
  return g;
}

Generated make_fig2() {
  // Two shells, one full relay station per direction: S = 2, R = 2,
  // T = S/(S+R) = 1/2.
  return make_ring_with_tap(1, 1, RsKind::kFull);
}

Generated make_loop_chain(const std::vector<RingSpec>& specs,
                          std::size_t chain_stations) {
  LIPLIB_EXPECT(!specs.empty(), "loop chain needs at least one loop");
  Generated g;
  const NodeId src = g.topo.add_source("src");
  g.sources.push_back(src);
  NodeId prev = src;
  std::size_t prev_port = 0;
  for (std::size_t k = 0; k < specs.size(); ++k) {
    const RingSpec& spec = specs[k];
    LIPLIB_EXPECT(spec.extra_shells >= 1,
                  "each loop needs at least one shell besides the port");
    const std::string tag = "R" + std::to_string(k);
    // Port shell: input 0 = chain input, input 1 = loop return;
    // output 0 = chain output, output 1 = loop forward.
    const NodeId port = g.topo.add_process(tag + "_port", 2, 2);
    g.processes.push_back(port);
    g.topo.connect({prev, prev_port}, {port, 0},
                   chain(chain_stations, RsKind::kFull));
    // Loop body: port -> E0 -> ... -> En-1 -> port, distributing
    // spec.loop_stations as evenly as possible over the loop's channels
    // with at least one station per shell-to-shell hop.
    const std::size_t hops = spec.extra_shells + 1;
    std::vector<std::size_t> per_hop(hops, 1);
    LIPLIB_EXPECT(spec.loop_stations >= hops,
                  "loop_stations must cover one station per hop");
    std::size_t remaining = spec.loop_stations - hops;
    for (std::size_t h = 0; remaining > 0; h = (h + 1) % hops, --remaining) {
      per_hop[h]++;
    }
    std::vector<ChannelId> loop;
    NodeId lp = port;
    std::size_t lp_port = 1;
    for (std::size_t e = 0; e < spec.extra_shells; ++e) {
      const NodeId body =
          g.topo.add_process(tag + "_b" + std::to_string(e), 1, 1);
      g.processes.push_back(body);
      loop.push_back(g.topo.connect({lp, lp_port}, {body, 0},
                                    chain(per_hop[e], spec.kind)));
      lp = body;
      lp_port = 0;
    }
    loop.push_back(g.topo.connect({lp, lp_port}, {port, 1},
                                  chain(per_hop[hops - 1], spec.kind)));
    g.loops.push_back(std::move(loop));
    prev = port;
    prev_port = 0;
  }
  const NodeId snk = g.topo.add_sink("out");
  g.sinks.push_back(snk);
  g.topo.connect({prev, prev_port}, {snk, 0},
                 chain(chain_stations, RsKind::kFull));
  return g;
}

Generated make_random_composite(Rng& rng, std::size_t segments,
                                bool allow_half, bool allow_half_in_loops) {
  LIPLIB_EXPECT(segments >= 1, "need at least one segment");
  Generated g;
  auto kind_off_cycle = [&] {
    return allow_half && rng.chance(1, 3) ? RsKind::kHalf : RsKind::kFull;
  };
  auto kind_on_cycle = [&] {
    // When halves are allowed on loops, bias toward them: the latent
    // latch needs a fully-half loop, which is the configuration the
    // deadlock experiments want to sample with useful frequency.
    return allow_half_in_loops && rng.chance(3, 4) ? RsKind::kHalf
                                                   : RsKind::kFull;
  };
  auto chain_off = [&](std::size_t n) {
    std::vector<RsKind> st;
    for (std::size_t i = 0; i < n; ++i) st.push_back(kind_off_cycle());
    return st;
  };

  const NodeId src = g.topo.add_source("src");
  g.sources.push_back(src);
  NodeId prev = src;
  std::size_t prev_port = 0;

  // Channels between segments connect two shells once past the source,
  // so they must carry at least one relay station (structural rule).
  auto inlet = [&] {
    const std::size_t lo = (prev == src) ? 0 : 1;
    return chain_off(rng.in_range(lo, 2));
  };

  for (std::size_t k = 0; k < segments; ++k) {
    const std::string tag = "s" + std::to_string(k);
    const std::uint64_t pick = rng.below(3);
    if (pick == 0) {
      // Pipeline stage.
      const NodeId p = g.topo.add_process(tag + "_pipe", 1, 1);
      g.topo.connect({prev, prev_port}, {p, 0}, inlet());
      g.processes.push_back(p);
      prev = p;
      prev_port = 0;
    } else if (pick == 1) {
      // Reconvergent diamond: fork -> {direct, via a body shell} -> join.
      const NodeId fork = g.topo.add_process(tag + "_fork", 1, 2);
      g.topo.connect({prev, prev_port}, {fork, 0}, inlet());
      const NodeId body = g.topo.add_process(tag + "_body", 1, 1);
      const NodeId join = g.topo.add_process(tag + "_join", 2, 1);
      g.processes.insert(g.processes.end(), {fork, body, join});
      g.topo.connect({fork, 0}, {body, 0}, chain_off(rng.in_range(1, 3)));
      g.topo.connect({body, 0}, {join, 0}, chain_off(rng.in_range(1, 3)));
      g.topo.connect({fork, 1}, {join, 1}, chain_off(rng.in_range(1, 3)));
      prev = join;
      prev_port = 0;
    } else {
      // Self-interacting loop through a 2-in 2-out port shell.
      const NodeId port = g.topo.add_process(tag + "_port", 2, 2);
      g.topo.connect({prev, prev_port}, {port, 0}, inlet());
      g.processes.push_back(port);
      const std::size_t body_shells = rng.in_range(0, 2);
      std::vector<ChannelId> loop;
      NodeId lp = port;
      std::size_t lp_port = 1;
      for (std::size_t b = 0; b < body_shells; ++b) {
        const NodeId body =
            g.topo.add_process(tag + "_l" + std::to_string(b), 1, 1);
        g.processes.push_back(body);
        std::vector<RsKind> st;
        for (std::size_t i = 0, n = rng.in_range(1, 2); i < n; ++i) {
          st.push_back(kind_on_cycle());
        }
        loop.push_back(g.topo.connect({lp, lp_port}, {body, 0}, st));
        lp = body;
        lp_port = 0;
      }
      std::vector<RsKind> st;
      for (std::size_t i = 0, n = rng.in_range(1, 2); i < n; ++i) {
        st.push_back(kind_on_cycle());
      }
      loop.push_back(g.topo.connect({lp, lp_port}, {port, 1}, st));
      g.loops.push_back(std::move(loop));
      prev = port;
      prev_port = 0;
    }
  }
  const NodeId snk = g.topo.add_sink("out");
  g.sinks.push_back(snk);
  g.topo.connect({prev, prev_port}, {snk, 0},
                 chain_off(rng.in_range(0, 2)));
  return g;
}

Generated make_random_feedforward(Rng& rng, std::size_t num_processes,
                                  std::size_t max_stations, bool allow_half) {
  LIPLIB_EXPECT(num_processes >= 1, "need at least one process");
  LIPLIB_EXPECT(max_stations >= 1, "need max_stations >= 1");
  Generated g;

  auto random_chain = [&](bool force_station) {
    const std::size_t lo = force_station ? 1 : 0;
    const std::size_t n = rng.in_range(lo, max_stations);
    std::vector<RsKind> st;
    for (std::size_t i = 0; i < n; ++i) {
      st.push_back(allow_half && rng.chance(1, 3) ? RsKind::kHalf
                                                  : RsKind::kFull);
    }
    return st;
  };

  // Create processes in topological order; each input connects to a
  // random earlier process output or to a fresh source.
  for (std::size_t i = 0; i < num_processes; ++i) {
    const std::size_t ins = 1 + (rng.chance(2, 5) ? 1 : 0);
    const NodeId p =
        g.topo.add_process("P" + std::to_string(i), ins, 1);
    for (std::size_t port = 0; port < ins; ++port) {
      if (!g.processes.empty() && rng.chance(3, 4)) {
        const NodeId producer =
            g.processes[rng.below(g.processes.size())];
        g.topo.connect({producer, 0}, {p, port}, random_chain(true));
      } else {
        const NodeId s =
            g.topo.add_source("src" + std::to_string(g.sources.size()));
        g.sources.push_back(s);
        g.topo.connect({s, 0}, {p, port}, random_chain(false));
      }
    }
    g.processes.push_back(p);
  }
  // Every output port that drives nothing gets a sink.
  for (NodeId p : g.processes) {
    if (g.topo.channels_of({p, 0}).empty()) {
      const NodeId s =
          g.topo.add_sink("out" + std::to_string(g.sinks.size()));
      g.sinks.push_back(s);
      g.topo.connect({p, 0}, {s, 0}, random_chain(false));
    }
  }
  return g;
}

}  // namespace liplib::graph
