// liplib/xir/sliced.hpp
//
// The bit-sliced evaluator: 64 independent scenarios of one lowered
// program packed into each machine word.
//
// Every protocol wire of the skeleton is a boolean, so a scenario's
// whole control state is a bit position.  SlicedEngine keeps one
// uint64_t "bitplane" per segment wire and per station state bit; a
// single settle pass then advances 64 scenarios at once with plain word
// ops.  Lanes are fully independent: all updates are lane-wise boolean
// functions, so lane i of a 64-lane run is bit-identical to a 1-lane
// run (and to the interpreter) — the differential suite asserts it.
//
// What may differ per lane: relay-station kinds (full/half per lane via
// a per-station lane mask — 64 netlist variants of one topology per
// pass) and initial occupancy (saturate_stations takes a lane mask).
// What is shared: the topology shape, the stop policy/resolution and
// sink patterns.  Lane divergence in *time* (one lane reaches its
// steady state early) is handled in analyze() by per-lane rho
// detection: finished lanes simply keep stepping — their state is
// periodic, so the extra work is wasted but harmless — until every
// lane has an answer or the budget runs out.
//
// See docs/xir.md for the exact masked-settle semantics.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "liplib/xir/xir.hpp"

namespace liplib::xir {

/// 64 scenarios per word: one uint64_t bitplane per wire/state bit.
class SlicedEngine {
 public:
  static constexpr std::size_t kLanes = 64;

  /// `num_lanes` in [1, 64]: how many lanes carry live scenarios (all 64
  /// planes are computed regardless; the tail lanes just mirror the base
  /// program and are never reported).
  explicit SlicedEngine(ProgramRef program, std::size_t num_lanes = kLanes);
  SlicedEngine(const graph::Topology& topo, skeleton::SkeletonOptions opts,
               std::size_t num_lanes = kLanes);

  const Program& program() const { return *prog_; }
  std::size_t num_lanes() const { return num_lanes_; }

  /// Overrides the relay-station kinds of one lane.  `kinds` is in the
  /// program's station order (channel-major, producer-side first — the
  /// flattening of Channel::stations over channels in id order).  Must
  /// be called before the first step().
  void set_station_kinds(std::size_t lane,
                         const std::vector<graph::RsKind>& kinds);

  /// Sink stop patterns are shared by all lanes (the environment is part
  /// of the scenario batch's common harness).
  void set_sink_pattern(graph::NodeId node, std::vector<bool> pattern);

  /// Worst-case-occupancy injection on the lanes set in `lane_mask`
  /// (bit i = lane i); see Skeleton::saturate_stations.
  void saturate_stations(std::uint64_t lane_mask);

  void step();
  void run(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) step();
  }

  std::uint64_t cycle() const { return cycle_; }

  /// Firings of a process node in one lane so far.
  std::uint64_t fires(std::size_t lane, graph::NodeId process) const;

  /// One lane's protocol state, byte-identical to ScalarEngine::
  /// state_signature() for the equivalent scalar run (same layout, so
  /// repeat cycles — and thus verdicts — match the interpreter's too).
  std::string lane_signature(std::size_t lane) const;

  struct LaneOutcome {
    skeleton::SkeletonResult result;
    /// Cycles simulated for this lane's verdict: transient + period on
    /// detection, max_cycles + 1 when no period was found — exactly
    /// Skeleton::cycle() after a scalar analyze().
    std::uint64_t cycles = 0;
  };

  /// Per-lane rho detection over all live lanes; one batched pass of the
  /// protocol dynamics serves every lane.  Verdicts are bit-identical to
  /// running each lane's scenario through the interpreter alone.
  std::vector<LaneOutcome> analyze(std::uint64_t max_cycles = 1u << 20,
                                   std::uint64_t env_period = 1);

 private:
  void refresh_schedule();
  std::uint64_t shell_ready_word(std::size_t k) const;
  void settle_stops();
  void settle_station(std::size_t s);
  void settle_shell(std::size_t k);
  void step_stations();

  ProgramRef prog_;
  std::size_t num_lanes_ = kLanes;
  std::uint64_t live_mask_ = ~0ull;  ///< bits [0, num_lanes)
  std::uint64_t cycle_ = 0;
  bool schedule_dirty_ = false;
  SettleSchedule schedule_;  ///< for the union of per-lane dynamic sets

  // Bitplanes: bit i = lane i.
  std::vector<std::uint64_t> fwd_w_;      ///< per segment
  std::vector<std::uint64_t> stop_w_;     ///< per segment
  std::vector<std::uint64_t> half_mask_;  ///< per station: lane is kHalf
  std::vector<std::uint64_t> occ1_;       ///< per station: occ >= 1
  std::vector<std::uint64_t> occ2_;       ///< per station: occ == 2
  std::vector<std::uint64_t> v0_;
  std::vector<std::uint64_t> v1_;
  std::vector<std::uint64_t> stop_reg_;
  std::vector<std::uint64_t> pend_w_;     ///< per shell out branch
  std::vector<std::uint64_t> src_pend_w_; ///< per source branch
  std::vector<std::uint64_t> fires_;      ///< [shell * 64 + lane]
  std::vector<std::vector<std::uint8_t>> sink_pattern_;  ///< per sink
};

/// One station-kind scenario of a batched screen.
struct VariantSpec {
  /// Station kinds in program order (channel-major); empty = the base
  /// topology's kinds unchanged.
  std::vector<graph::RsKind> kinds;
  bool worst_case_occupancy = false;
};

/// Screens up to 64 kind-variants of one topology in a single sliced
/// evaluation: the topology is lowered once, each variant occupies one
/// lane, and one batched analyze() yields every verdict.  Verdicts are
/// bit-identical to skeleton::screen_for_deadlock on the equivalent
/// per-variant topologies.
std::vector<skeleton::ScreeningVerdict> screen_variants(
    const graph::Topology& topo, const std::vector<VariantSpec>& variants,
    skeleton::SkeletonOptions opts = {}, std::uint64_t max_cycles = 1u << 20);

}  // namespace liplib::xir
