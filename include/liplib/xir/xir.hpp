// liplib/xir/xir.hpp
//
// liplib::xir — the compiled skeleton substrate.
//
// The interpreted skeleton (skeleton::Skeleton) walks graph::Topology
// node objects every cycle: nested vectors of ports, branch lists and
// station structs, re-discovered sweep after sweep.  xir lowers a
// topology ONCE into a flattened CSR/arena IR — plain index arrays, no
// per-node heap objects — and runs two evaluators over it:
//
//  - ScalarEngine: a compiled scalar evaluator, bit-exact against the
//    interpreter.  The stop network is settled by straight-line sweeps
//    over the CSR arrays in a precomputed dependency order: every stop
//    producer outside a combinational cycle is evaluated exactly once
//    per cycle (Kahn topological order over the stop-dependency graph);
//    only the cyclic remainder — half stations and shells on
//    combinational stop loops, the paper's hazard case — iterates to
//    the fixpoint.  Because the stop system is monotone from its
//    pessimistic (all-1) or optimistic (all-0) start, the ordered
//    single pass and the interpreter's repeated sweeps converge to the
//    identical extreme fixpoint.
//
//  - SlicedEngine (xir/sliced.hpp): a bit-sliced evaluator packing 64
//    independent scenarios of one lowered program into each machine
//    word — 64 station-kind variants or screening scenarios settled per
//    pass, lane divergence handled by masked updates.
//
// Engine selection for screening flows (campaign jobs, serve requests,
// lidtool) is the EngineMode enum below; screen_for_deadlock here is
// the drop-in dispatching twin of skeleton::screen_for_deadlock.
//
// See docs/xir.md for the IR layout and lowering rules.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "liplib/graph/topology.hpp"
#include "liplib/skeleton/skeleton.hpp"

namespace liplib::probe {
class Probe;
struct Wiring;
}  // namespace liplib::probe

namespace liplib::xir {

/// Which evaluator screens a design.
enum class EngineMode : std::uint8_t {
  kInterp = 0,    ///< the interpreted skeleton (skeleton::Skeleton)
  kCompiled = 1,  ///< xir::ScalarEngine (compiled straight-line sweeps)
  kSliced = 2,    ///< xir::SlicedEngine (64 scenarios per machine word)
};

/// Stable lower-case wire/CLI name ("interp", "compiled", "sliced").
const char* engine_mode_name(EngineMode m);

/// Inverse of engine_mode_name; returns false on an unknown name.
bool parse_engine_mode(std::string_view name, EngineMode* out);

/// The settle schedule of a lowered program: the stop producers that can
/// be evaluated exactly once in dependency order, and the combinational
/// remainder that must iterate.  Unit ids: u < num_stations is station
/// u; otherwise shell (u - num_stations).
struct SettleSchedule {
  std::vector<std::uint32_t> order;    ///< acyclic units, consumers first
  std::vector<std::uint32_t> iterate;  ///< units on/behind stop cycles
};

/// The flattened IR: one topology lowered into CSR index arrays.  All
/// layout conventions match the interpreter exactly (segments laid out
/// channel by channel, hop by hop; stations in channel-major order;
/// shell branch lists port-major with branches appended in channel-id
/// order), so unit indices are interchangeable between the engines, the
/// interpreter and probe::Wiring.
///
/// Lowering requires the paper's simplified shell
/// (SkeletonOptions::input_queue_depth == 0); queued shells stay on the
/// interpreter.
struct Program {
  graph::Topology topo;
  skeleton::SkeletonOptions opts;
  bool strict = false;       ///< StopPolicy::kCarloniStrict
  bool pessimistic = true;   ///< StopResolution::kPessimistic

  std::size_t num_segments = 0;

  // Stations, channel-major order.
  std::vector<std::uint32_t> st_in;    ///< upstream segment
  std::vector<std::uint32_t> st_out;   ///< downstream segment
  std::vector<std::uint8_t> st_half;   ///< base kind: 1 = RsKind::kHalf

  // Shells (process nodes), node-id order.
  std::vector<graph::NodeId> shell_node;
  std::vector<std::uint32_t> shell_in_begin;  ///< size shells+1
  std::vector<std::uint32_t> shell_in_seg;    ///< input segment per port
  std::vector<std::uint32_t> shell_br_begin;  ///< size shells+1
  std::vector<std::uint32_t> shell_br_seg;    ///< out branch segments
  /// Port boundaries inside the branch list (size = total out ports + 1,
  /// indexed via shell_port_begin); kept for probe wiring replay.
  std::vector<std::uint32_t> shell_port_begin;  ///< size shells+1
  std::vector<std::uint32_t> port_br_begin;     ///< per port, +1 sentinel

  // Sources and sinks, node-id order.
  std::vector<graph::NodeId> src_node;
  std::vector<std::uint32_t> src_br_begin;  ///< size sources+1
  std::vector<std::uint32_t> src_br_seg;
  std::vector<graph::NodeId> sink_node;
  std::vector<std::uint32_t> sink_seg;

  /// NodeId -> dense per-kind index (shell/source/sink), or npos.
  std::vector<std::size_t> node_index;

  /// Base settle schedule (computed from st_half; a SlicedEngine whose
  /// lanes upgrade stations to half builds its own).
  SettleSchedule schedule;

  std::size_t num_stations() const { return st_in.size(); }
  std::size_t num_shells() const { return shell_node.size(); }
  std::size_t num_sources() const { return src_node.size(); }
  std::size_t num_sinks() const { return sink_node.size(); }
};

using ProgramRef = std::shared_ptr<const Program>;

/// Lowers a topology into the flattened IR.  Validates the topology the
/// same way the interpreter's constructor does and throws ApiError on
/// structural errors or input_queue_depth != 0.
ProgramRef lower(const graph::Topology& topo,
                 skeleton::SkeletonOptions opts = {});

/// Builds a settle schedule for a given dynamic-station set (1 = the
/// station's stop output is combinational, i.e. half in at least one
/// lane).  Shells are always dynamic.
SettleSchedule build_settle_schedule(
    const Program& p, const std::vector<std::uint8_t>& station_dynamic);

/// The compiled scalar engine.  Public surface mirrors
/// skeleton::Skeleton; dynamics, verdicts and probe observations are
/// bit-exact against it (the differential suite in tests/xir_test.cpp
/// holds the two together over 300 random topologies).
class ScalarEngine {
 public:
  explicit ScalarEngine(ProgramRef program);
  /// Convenience: lower + construct in one step.
  ScalarEngine(const graph::Topology& topo,
               skeleton::SkeletonOptions opts = {});

  const Program& program() const { return *prog_; }

  /// See Skeleton::set_sink_pattern.
  void set_sink_pattern(graph::NodeId node, std::vector<bool> pattern);

  /// See Skeleton::saturate_stations.
  void saturate_stations();

  void step();
  void run(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) step();
  }

  std::uint64_t cycle() const { return cycle_; }

  /// Firings of a process node so far.
  std::uint64_t fires(graph::NodeId process) const;

  /// Serialized protocol state for rho detection.  Injective over the
  /// same state the interpreter serializes (different byte layout, so
  /// signatures are not interchangeable between engines — repeat cycles
  /// are).
  std::string state_signature() const;

  /// See Skeleton::analyze; verdicts are bit-identical.
  skeleton::SkeletonResult analyze(std::uint64_t max_cycles = 1u << 20,
                                   std::uint64_t env_period = 1);

  /// Attaches a probe through the same Wiring contract as the
  /// interpreter (and thereby the telemetry watchdog, which rides the
  /// probe's CycleObserver hook).  Must be called before the first
  /// step() on an unbound probe.
  void attach_probe(probe::Probe& probe);

 private:
  bool shell_ready(std::size_t k) const;
  void settle_stops();
  void eval_settle_unit(std::uint32_t unit);
  bool eval_settle_unit_changed(std::uint32_t unit);
  void observe_probe();

  ProgramRef prog_;
  probe::Probe* probe_ = nullptr;
  std::uint64_t cycle_ = 0;

  // Arena state: plain byte arrays indexed by the program's CSR ids.
  std::vector<std::uint8_t> fwd_;        ///< per segment
  std::vector<std::uint8_t> stop_;       ///< per segment
  std::vector<std::uint8_t> st_occ_;     ///< per station: 0, 1, 2
  std::vector<std::uint8_t> st_v0_;
  std::vector<std::uint8_t> st_v1_;
  std::vector<std::uint8_t> st_stop_reg_;
  std::vector<std::uint8_t> pend_;       ///< per shell out branch
  std::vector<std::uint8_t> src_pend_;   ///< per source branch
  std::vector<std::uint64_t> fire_count_;  ///< per shell
  std::vector<std::vector<std::uint8_t>> sink_pattern_;  ///< per sink
};

/// Engine-dispatching twin of skeleton::screen_for_deadlock: identical
/// verdicts from any engine.  kSliced runs the single scenario in lane
/// 0 of a one-lane sliced evaluation (batched sliced screening lives in
/// xir/sliced.hpp and campaign::make_mix_screen_campaign).
skeleton::ScreeningVerdict screen_for_deadlock(
    const graph::Topology& topo, skeleton::ScreeningOptions opts = {},
    std::uint64_t max_cycles = 1u << 20,
    EngineMode engine = EngineMode::kCompiled);

/// Steady-state analysis via a selected engine; result plus the cycles
/// actually simulated (== Skeleton::cycle() after analyze()).
struct AnalyzeOutcome {
  skeleton::SkeletonResult result;
  std::uint64_t cycles = 0;
};
AnalyzeOutcome analyze_with_engine(const graph::Topology& topo,
                                   skeleton::SkeletonOptions opts,
                                   std::uint64_t max_cycles,
                                   EngineMode engine,
                                   bool worst_case_occupancy = false);

/// Builds the probe::Wiring of a lowered program (the same wiring the
/// interpreter builds in Skeleton::attach_probe).
void build_probe_wiring(const Program& p, probe::Wiring* out);

}  // namespace liplib::xir
