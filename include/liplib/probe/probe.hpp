// liplib/probe/probe.hpp
//
// Cycle-accurate observability for latency-insensitive simulations.
//
// A Probe attaches to a simulator (lip::System::attach_probe or
// skeleton::Skeleton::attach_probe) and, every cycle, receives the
// settled valid/stop bits of every wire segment plus the activity of
// every shell.  From those it derives:
//
//  - counters: per-shell fired/waiting/stopped cycle counts and
//    per-segment valid/void/stop occupancy, windowed with reset_window()
//    so measured throughputs are *exact* Rationals over the periodic
//    regime (they must — and in the tests do — equal the analytic
//    (m−i)/m, S/(S+R) and MCR predictions of graph/analysis);
//  - stall attribution: each cycle a shell is waiting or stopped, the
//    settled stop/valid network is walked back to the unit that
//    originated the condition, and a (victim, culprit) blame histogram
//    accumulates — "why is node F at T = 7/9?" has a one-line answer;
//  - streaming trace export: an optional Chrome trace-event / Perfetto
//    sink (probe/trace.hpp) with one track per shell and occupancy
//    counter tracks per channel.
//
// The host simulator pays exactly one null-pointer test per step when no
// probe is attached; the hot path allocates nothing (the probe owns all
// scratch storage, sized at bind time).  See docs/probe.md.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "liplib/graph/topology.hpp"
#include "liplib/probe/trace.hpp"
#include "liplib/sim/kernel.hpp"
#include "liplib/support/json.hpp"
#include "liplib/support/rational.hpp"

namespace liplib::probe {

/// What a shell did in one cycle.  Mirrors lip::ShellActivity (the probe
/// layer sits below lip/ and skeleton/, so it keeps its own copy).
enum class Activity : std::uint8_t {
  kFired = 0,          ///< consumed inputs and stepped the pearl
  kWaitingInput = 1,   ///< some input was void
  kStoppedOutput = 2,  ///< all inputs valid but an output back-pressured
};

/// Kind of unit a blame walk can terminate at.
enum class UnitKind : std::uint8_t {
  kShell = 0,
  kSource = 1,
  kSink = 2,
  kStation = 3,
};

/// Identity of a blame culprit.
struct Unit {
  UnitKind kind = UnitKind::kShell;
  graph::NodeId node = 0;        ///< shells, sources, sinks
  graph::ChannelId channel = 0;  ///< stations
  std::size_t station = 0;       ///< station position within the channel
  friend bool operator==(const Unit&, const Unit&) = default;
};

class Probe;

/// Receives every committed cycle of an attached probe.  This is the
/// extension point the telemetry layer (watchdog + flight recorder)
/// rides on: one host attach_probe() call feeds both the probe's own
/// counters and any observer, with no duplicate wiring.
class CycleObserver {
 public:
  virtual ~CycleObserver() = default;
  /// Called once from Probe::bind(), after all probe state is sized.
  virtual void on_bind(const Probe& probe) = 0;
  /// Called at the end of every commit_cycle() with the settled segment
  /// valid/stop bits and per-shell activity (wiring order).  Counter and
  /// blame state for `cycle` is already folded in when this runs.
  virtual void on_cycle(std::uint64_t cycle, const std::uint8_t* valid,
                        const std::uint8_t* stop, const Activity* activity) = 0;
};

/// What to measure.  Disabling a piece removes its per-cycle cost.
struct ProbeConfig {
  bool counters = true;
  bool attribution = true;
  /// Optional trace sink (not owned; must outlive the probe or be
  /// finished first).
  TraceSink* trace = nullptr;
  /// Optional per-cycle observer (not owned; must outlive the probe).
  CycleObserver* observer = nullptr;
};

/// Per-shell activity counters over the current window.
struct ShellCount {
  graph::NodeId node = 0;
  std::string name;
  std::uint64_t fired = 0;
  std::uint64_t waiting = 0;
  std::uint64_t stopped = 0;
};

/// Per-segment occupancy counters over the current window.
struct SegmentCount {
  graph::ChannelId channel = 0;
  std::size_t hop = 0;         ///< 0 = the producer's output hop
  std::string label;           ///< "<from>_to_<to>.h<hop>"
  std::uint64_t valid = 0;
  std::uint64_t voids = 0;
  std::uint64_t stopped = 0;
  std::uint64_t stop_on_valid = 0;
  std::uint64_t stop_on_void = 0;
};

/// One row of the blame histogram: `victim` spent `cycles` cycles in
/// state `why` because of `culprit`.
struct BlameEntry {
  graph::NodeId victim = 0;
  std::string victim_name;
  Activity why = Activity::kWaitingInput;
  Unit culprit;
  std::string culprit_name;
  std::uint64_t cycles = 0;
};

/// Aggregated measurement.  Throughputs are exact Rationals; windowed to
/// a whole number of steady-state periods they equal the analytic
/// predictions exactly.
struct ProbeReport {
  std::uint64_t cycles = 0;  ///< cycles in the counting window
  std::vector<ShellCount> shells;
  std::vector<SegmentCount> segments;
  /// Sorted by cycles descending (ties: victim id, state, culprit).
  std::vector<BlameEntry> blame;

  /// Measured firings/cycle of a shell (exact; 0 for an empty window).
  Rational throughput(graph::NodeId shell) const;
  /// Minimum over all shells (the system throughput).
  Rational min_throughput() const;
  /// Highest-count blame row, or nullptr when nothing stalled.
  const BlameEntry* top_blame() const;
  /// Schema "liplib.probe/1".
  Json to_json() const;
};

/// Static description of the instrumented structure, built by the host
/// simulator at attach time.  Indices are the host's dense per-kind
/// indices; segment ids index the host's segment array.
struct Wiring {
  struct Endpoint {
    UnitKind kind = UnitKind::kShell;
    std::size_t index = 0;
  };
  struct Segment {
    graph::ChannelId channel = 0;
    std::size_t hop = 0;
    Endpoint producer;  ///< kShell, kSource or kStation
    Endpoint consumer;  ///< kShell, kSink or kStation
  };
  struct Shell {
    graph::NodeId node = 0;
    std::vector<std::size_t> in_segs;
    std::vector<std::size_t> out_segs;  ///< all branches of all ports
  };
  struct Station {
    graph::ChannelId channel = 0;
    std::size_t index = 0;  ///< position within the channel's chain
    bool full = true;       ///< kFull (registered stop) vs kHalf
    std::size_t in_seg = 0;
    std::size_t out_seg = 0;
  };
  struct Env {
    graph::NodeId node = 0;
  };

  std::vector<Segment> segments;
  std::vector<Shell> shells;
  std::vector<Station> stations;
  std::vector<Env> sources;
  std::vector<Env> sinks;
  /// StopPolicy::kCarloniStrict semantics (stops block regardless of
  /// validity) — changes which out-branch counts as blocking.
  bool strict = false;
};

/// The observability instrument.  Create one, pass it to a simulator's
/// attach_probe(), step the simulator, then read report().
class Probe {
 public:
  explicit Probe(ProbeConfig cfg = {});
  ~Probe();

  Probe(const Probe&) = delete;
  Probe& operator=(const Probe&) = delete;

  const ProbeConfig& config() const { return cfg_; }
  bool bound() const { return bound_; }

  /// The instrumented structure (valid after bind()).  Observers use
  /// these to interpret the flat scratch arrays they are handed.
  const Wiring& wiring() const { return wiring_; }
  const graph::Topology& topology() const { return topo_; }

  // ---- host-simulator interface ----------------------------------------

  /// Called once by the simulator the probe is attached to.  Sizes all
  /// scratch storage; after bind() the per-cycle path allocates nothing.
  void bind(const graph::Topology& topo, Wiring wiring);

  /// Per-cycle scratch the host fills before commit_cycle(): settled
  /// valid/stop bit per segment, activity per shell (wiring order).
  std::uint8_t* valid_scratch() { return valid_.data(); }
  std::uint8_t* stop_scratch() { return stop_.data(); }
  Activity* activity_scratch() { return activity_.data(); }

  /// Consumes the scratch arrays for simulation cycle `cycle`.
  void commit_cycle(std::uint64_t cycle);

  // ---- user interface --------------------------------------------------

  /// Zeroes every counter and the blame histogram (the trace keeps
  /// streaming).  Call after the transient to window the measurement to
  /// the periodic regime; report() then yields exact steady-state rates.
  void reset_window();

  /// Cycles committed since bind()/reset_window().
  std::uint64_t window_cycles() const { return window_cycles_; }

  ProbeReport report() const;

  /// Human-readable name of a unit ("B", "A_to_B.rs0", ...).
  std::string unit_name(const Unit& u) const;

  /// Closes open trace spans and finishes the sink's JSON document.
  /// Idempotent; also run by the destructor.  No-op without a trace.
  void finish_trace();

 private:
  struct ShellTally {
    std::uint64_t counts[3] = {0, 0, 0};  // indexed by Activity
  };
  struct SegTally {
    std::uint64_t valid = 0;
    std::uint64_t stopped = 0;
    std::uint64_t stop_on_valid = 0;
  };
  struct Span {
    Activity act = Activity::kFired;
    std::uint64_t start = 0;
    bool open = false;
  };
  struct ChanSample {
    std::uint64_t valid = ~0ull;  // force an initial counter emission
    std::uint64_t stopped = ~0ull;
  };

  bool blocking(std::size_t seg) const {
    return stop_[seg] != 0 && (wiring_.strict || valid_[seg] != 0);
  }
  std::size_t unit_ordinal(const Unit& u) const;
  Unit ordinal_unit(std::size_t ordinal) const;
  Unit attribute(std::size_t shell, Activity why);
  void count_cycle();
  void trace_cycle(std::uint64_t cycle);

  ProbeConfig cfg_;
  bool bound_ = false;
  graph::Topology topo_;
  Wiring wiring_;

  // Scratch filled by the host each cycle.
  std::vector<std::uint8_t> valid_;
  std::vector<std::uint8_t> stop_;
  std::vector<Activity> activity_;

  // Counters (window-scoped).
  std::uint64_t window_cycles_ = 0;
  std::vector<ShellTally> shell_tally_;
  std::vector<SegTally> seg_tally_;
  // Blame histogram, flat: [(victim * 3 + why) * units + culprit].
  std::vector<std::uint64_t> blame_;
  std::size_t unit_count_ = 0;

  // Attribution scratch (stamped visited set; no per-walk allocation).
  std::vector<std::uint32_t> visit_mark_;
  std::uint32_t visit_stamp_ = 0;

  // Precomputed names and channel->segments map.
  std::vector<std::string> unit_names_;     // by ordinal
  std::vector<std::string> channel_track_;  // counter-track name per channel
  std::vector<std::vector<std::size_t>> channel_segs_;

  // Trace state.
  std::vector<Span> span_;
  std::vector<ChanSample> chan_sample_;
  std::uint64_t last_cycle_ = 0;
  bool any_cycle_ = false;
};

// ---- event-kernel observability ---------------------------------------

/// Counters over a sim::SimContext run.
struct KernelCounters {
  std::uint64_t time_points = 0;     ///< discrete times with activity
  std::uint64_t delta_cycles = 0;
  std::uint64_t signal_changes = 0;
  std::uint64_t process_wakeups = 0;
  std::uint64_t max_deltas_per_time = 0;
};

/// Observer for the event kernel: counts delta-cycle activity and can
/// stream a "deltas" counter track.  Attach with
/// SimContext::set_observer(&probe).
class KernelProbe final : public sim::KernelObserver {
 public:
  /// `trace` is optional and not owned.  `pid` is the trace process id
  /// used for the kernel's counter track.
  explicit KernelProbe(TraceSink* trace = nullptr, std::uint64_t pid = 2);

  void on_delta(sim::Time now, std::size_t changes,
                std::size_t wakeups) override;
  void on_time_serviced(sim::Time now, std::uint64_t deltas) override;

  const KernelCounters& counters() const { return counters_; }

  /// Schema "liplib.kernel-probe/1".
  Json to_json() const;

 private:
  KernelCounters counters_;
  TraceSink* trace_;
  std::uint64_t pid_;
};

}  // namespace liplib::probe
