// liplib/probe/trace.hpp
//
// Streaming Chrome trace-event JSON sink.
//
// Writes the "JSON Array Format" consumed by Perfetto (ui.perfetto.dev)
// and chrome://tracing: a {"traceEvents":[...]} document of complete
// events (ph "X"), counter events (ph "C") and metadata events (ph "M").
// Events are appended to an internal buffer and flushed to the ostream
// whenever the buffer passes a threshold, so million-cycle traces never
// live in memory.  Field order and formatting are byte-stable (golden
// tests lock them).
//
// One simulated clock cycle maps to one timestamp unit (Perfetto displays
// it as a microsecond; only relative durations matter).

#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>

namespace liplib::probe {

struct TraceSinkOptions {
  /// Flush the buffer to the stream once it holds this many bytes.
  std::size_t flush_threshold = 64 * 1024;
};

/// Buffered writer of Chrome trace-event JSON.  The ostream must outlive
/// the sink (or finish() must be called before the stream dies).
class TraceSink {
 public:
  using Options = TraceSinkOptions;

  explicit TraceSink(std::ostream& os, Options opt = {});

  /// Finishes the document (see finish()).
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Metadata: names the process `pid` in the trace viewer.
  void name_process(std::uint64_t pid, std::string_view name);

  /// Metadata: names track `tid` of process `pid`.
  void name_thread(std::uint64_t pid, std::uint64_t tid,
                   std::string_view name);

  /// A complete event (ph "X"): a span [ts, ts+dur) on track (pid, tid).
  void complete_event(std::string_view name, std::string_view category,
                      std::uint64_t ts, std::uint64_t dur, std::uint64_t pid,
                      std::uint64_t tid);

  /// A counter event (ph "C"): one sample of the named series at `ts`.
  void counter_event(
      std::string_view name, std::uint64_t ts, std::uint64_t pid,
      std::initializer_list<std::pair<std::string_view, std::uint64_t>>
          series);

  /// An instant event (ph "i", thread scope): a point marker at `ts` on
  /// track (pid, tid) — cache evictions, lease re-dispatches and other
  /// fleet-level moments exported by liplib::trace.
  void instant_event(std::string_view name, std::string_view category,
                     std::uint64_t ts, std::uint64_t pid, std::uint64_t tid);

  /// Splices one pre-rendered trace-event object (without separators)
  /// into the stream verbatim — the merge path of `lidtool trace`,
  /// which folds events from existing Chrome/Perfetto documents (probe
  /// exports) into the same timeline as freshly exported spans.
  void raw_event(std::string_view event_json);

  /// Writes the closing bracket and flushes.  Idempotent; no events may
  /// be added afterwards (they are dropped).
  void finish();

  bool finished() const { return finished_; }

  /// Total bytes handed to the ostream plus bytes still buffered.
  std::uint64_t bytes_written() const { return bytes_ + buf_.size(); }

 private:
  void begin_event();          // separator + bookkeeping
  void maybe_flush();
  void append_escaped(std::string_view s);

  std::ostream& os_;
  Options opt_;
  std::string buf_;
  std::uint64_t bytes_ = 0;
  bool first_ = true;
  bool finished_ = false;
};

}  // namespace liplib::probe
