// liplib/rtl/rtl_system.hpp
//
// RTL-level elaboration of a latency-insensitive design onto the
// event-driven simulation kernel (liplib/sim) — the counterpart of the
// paper's VHDL implementation of shells and relay stations validated with
// an event-driven simulator.
//
// Every block is written as it would be in RTL:
//   - clocked processes sample their inputs on the rising clock edge and
//     drive registered outputs (data/valid of every block; the stop of a
//     full relay station);
//   - combinational processes drive the stop-transparent paths (shell
//     back pressure, half relay station stop gating) and settle through
//     delta cycles.
// A half relay station inside a loop therefore creates a *combinational
// cycle* on the stop wires; when the token dynamics actually excite it,
// the kernel's delta-cycle limit trips — the event-driven analogue of the
// paper's potential deadlock (a latch on the stop ring).
//
// The cycle-accurate lip::System and this RTL elaboration are locked
// together by the test suite (identical sink traces and fire counts under
// both stop policies), reproducing the paper's cross-validation between
// the RTL description and the protocol-level analysis.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "liplib/graph/topology.hpp"
#include "liplib/lip/environment.hpp"
#include "liplib/lip/pearl.hpp"
#include "liplib/lip/token.hpp"
#include "liplib/sim/kernel.hpp"

namespace liplib::rtl {

/// Options for RTL elaboration.
struct RtlOptions {
  lip::StopPolicy policy = lip::StopPolicy::kCasuDiscardOnVoid;
};

/// An elaborated RTL netlist of a latency-insensitive design.
class RtlSystem {
 public:
  explicit RtlSystem(const graph::Topology& topo, RtlOptions opts = {});
  ~RtlSystem();

  RtlSystem(const RtlSystem&) = delete;
  RtlSystem& operator=(const RtlSystem&) = delete;

  /// Binds the functional pearl of a process node (arity must match).
  void bind_pearl(graph::NodeId node, std::unique_ptr<lip::Pearl> pearl);

  /// Binds a source behaviour (default: counter stream, always ready).
  void bind_source(graph::NodeId node, lip::SourceBehavior behavior);

  /// Binds a sink behaviour (default: greedy).
  void bind_sink(graph::NodeId node, lip::SinkBehavior behavior);

  /// Simulates `n` clock cycles (two kernel time units each).
  void run_cycles(std::uint64_t n);

  std::uint64_t cycles_run() const { return cycles_; }

  /// Valid tokens consumed by a sink, in order.
  const std::vector<lip::Token>& sink_stream(graph::NodeId sink) const;

  /// Per-cycle presented tokens at a sink (void when invalid).
  const std::vector<lip::Token>& sink_cycle_trace(graph::NodeId sink) const;

  /// Firings of a shell so far.
  std::uint64_t shell_fire_count(graph::NodeId shell) const;

  /// Streams the protocol-visible waveform (clock plus the valid/data/
  /// stop wires of every channel hop) into `os` as an IEEE-1364 VCD dump,
  /// viewable with GTKWave.  Must be called before the first
  /// run_cycles(); `os` must outlive the system.
  void attach_vcd(std::ostream& os);

  /// The underlying kernel (e.g. to inspect delta statistics).
  sim::SimContext& context();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t cycles_ = 0;
};

}  // namespace liplib::rtl
