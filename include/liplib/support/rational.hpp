// liplib/support/rational.hpp
//
// Exact rational arithmetic.  Throughputs in latency-insensitive design are
// exact fractions — S/(S+R) for a loop, (m−i)/m for reconvergent paths — so
// the analysis code compares them exactly instead of through doubles.

#pragma once

#include <compare>
#include <cstdint>
#include <numeric>
#include <ostream>
#include <string>

#include "liplib/support/check.hpp"

namespace liplib {

/// An exact rational number with value-type semantics.  Always stored in
/// lowest terms with a positive denominator.  The magnitudes that occur in
/// throughput analysis (numerators/denominators bounded by system register
/// counts) are far below overflow range.
class Rational {
 public:
  /// Zero.
  constexpr Rational() = default;

  /// num / den, reduced.  den must be nonzero.
  Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
    LIPLIB_EXPECT(den != 0, "rational with zero denominator");
    normalize();
  }

  /// Whole number.
  constexpr Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// Renders "num/den", or just "num" when the denominator is 1.
  std::string str() const {
    if (den_ == 1) return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
  }

  /// Parses the str() form back: "num" or "num/den" with an optional
  /// leading '-'.  Throws ApiError on anything else (trailing garbage,
  /// empty parts, zero denominator).  parse(x.str()) == x, which is what
  /// lets exact throughputs round-trip through the JSON aggregates.
  static Rational parse(const std::string& text) {
    const auto slash = text.find('/');
    const std::string num_part =
        slash == std::string::npos ? text : text.substr(0, slash);
    const std::string den_part =
        slash == std::string::npos ? "1" : text.substr(slash + 1);
    auto to_i64 = [&text](const std::string& part) {
      LIPLIB_EXPECT(!part.empty(), "bad rational '" + text + "'");
      std::size_t used = 0;
      std::int64_t v = 0;
      try {
        v = std::stoll(part, &used);
      } catch (const std::exception&) {
        throw ApiError("bad rational '" + text + "'");
      }
      LIPLIB_EXPECT(used == part.size(), "bad rational '" + text + "'");
      return v;
    };
    return Rational(to_i64(num_part), to_i64(den_part));
  }

  friend Rational operator+(const Rational& a, const Rational& b) {
    return Rational(a.num_ * b.den_ + b.num_ * a.den_, a.den_ * b.den_);
  }
  friend Rational operator-(const Rational& a, const Rational& b) {
    return Rational(a.num_ * b.den_ - b.num_ * a.den_, a.den_ * b.den_);
  }
  friend Rational operator*(const Rational& a, const Rational& b) {
    return Rational(a.num_ * b.num_, a.den_ * b.den_);
  }
  friend Rational operator/(const Rational& a, const Rational& b) {
    LIPLIB_EXPECT(b.num_ != 0, "rational division by zero");
    return Rational(a.num_ * b.den_, a.den_ * b.num_);
  }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a,
                                          const Rational& b) {
    return a.num_ * b.den_ <=> b.num_ * a.den_;
  }

  friend std::ostream& operator<<(std::ostream& os, const Rational& r) {
    return os << r.str();
  }

 private:
  void normalize() {
    if (den_ < 0) {
      num_ = -num_;
      den_ = -den_;
    }
    const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
    if (num_ == 0) den_ = 1;
  }

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

}  // namespace liplib
