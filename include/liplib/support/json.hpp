// liplib/support/json.hpp
//
// A minimal JSON value builder with deterministic serialization: object
// keys keep insertion order and numbers are emitted exactly (integers as
// integers, rationals as "num/den" strings), so two structurally equal
// documents built in the same order serialize byte-identically.  This is
// what the campaign aggregation layer and the machine-readable bench
// outputs rely on — no locale, no float formatting drift, no hash-map
// ordering.
//
// Json::parse is the reader half: a strict recursive-descent parser for
// the same dialect (UTF-8 text, \uXXXX escapes, int/uint/double split on
// the number grammar), so the BENCH_*.json perf artifacts and telemetry
// post-mortem bundles the repo writes can be consumed back (lidtool
// `bench diff`, `replay`).  parse(dump(x)) reconstructs x.

#pragma once

#include <charconv>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "liplib/support/check.hpp"
#include "liplib/support/rational.hpp"

namespace liplib {

/// An ordered JSON value (null, bool, integer, double, string, array,
/// object).  Build with the static factories and set()/push(); serialize
/// with dump().
class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}  // NOLINT
  Json(std::uint64_t v)  // NOLINT
      : kind_(Kind::kUInt), uint_(v) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}  // NOLINT
  Json(unsigned v) : kind_(Kind::kUInt), uint_(v) {}  // NOLINT
  Json(double v) : kind_(Kind::kDouble), double_(v) {}  // NOLINT
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::kString), str_(s) {}  // NOLINT
  /// Rationals serialize as the exact string "num/den" (or "num").
  Json(const Rational& r)  // NOLINT
      : kind_(Kind::kString), str_(r.str()) {}

  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  /// Sets a key on an object (insertion-ordered; duplicate keys are a
  /// caller bug).  Returns *this for chaining.
  Json& set(std::string key, Json value) {
    LIPLIB_EXPECT(kind_ == Kind::kObject, "Json::set on a non-object");
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// Appends an element to an array.  Returns *this for chaining.
  Json& push(Json value) {
    LIPLIB_EXPECT(kind_ == Kind::kArray, "Json::push on a non-array");
    elements_.push_back(std::move(value));
    return *this;
  }

  bool empty() const { return members_.empty() && elements_.empty(); }

  // ---- inspection (for parsed documents) --------------------------------

  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUInt ||
           kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const {
    LIPLIB_EXPECT(kind_ == Kind::kBool, "Json::as_bool on a non-bool");
    return bool_;
  }
  /// Any numeric kind, widened to double (ints above 2^53 lose precision,
  /// as in any JSON consumer).
  double as_double() const {
    switch (kind_) {
      case Kind::kInt: return static_cast<double>(int_);
      case Kind::kUInt: return static_cast<double>(uint_);
      case Kind::kDouble: return double_;
      default: break;
    }
    throw ApiError("Json::as_double on a non-number");
  }
  std::uint64_t as_uint() const {
    if (kind_ == Kind::kUInt) return uint_;
    if (kind_ == Kind::kInt && int_ >= 0) {
      return static_cast<std::uint64_t>(int_);
    }
    throw ApiError("Json::as_uint on a non-(unsigned-)integer");
  }
  std::int64_t as_int() const {
    if (kind_ == Kind::kInt) return int_;
    if (kind_ == Kind::kUInt && uint_ <= 0x7fffffffffffffffull) {
      return static_cast<std::int64_t>(uint_);
    }
    throw ApiError("Json::as_int on a non-integer");
  }
  const std::string& as_string() const {
    LIPLIB_EXPECT(kind_ == Kind::kString, "Json::as_string on a non-string");
    return str_;
  }

  /// Array length / object member count.
  std::size_t size() const {
    return kind_ == Kind::kArray ? elements_.size() : members_.size();
  }
  /// Array element access.
  const Json& at(std::size_t i) const {
    LIPLIB_EXPECT(kind_ == Kind::kArray && i < elements_.size(),
                  "Json::at out of range or on a non-array");
    return elements_[i];
  }
  /// Object member lookup (first match, insertion order); nullptr when
  /// the key is absent or the value is not an object.
  const Json* find(std::string_view key) const {
    if (kind_ != Kind::kObject) return nullptr;
    for (const auto& [k, v] : members_) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  /// Insertion-ordered members of an object (empty for other kinds).
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }
  /// Elements of an array (empty for other kinds).
  const std::vector<Json>& elements() const { return elements_; }

  /// Serializes the value.  indent = 0: compact one-line form; indent > 0:
  /// pretty-printed with that many spaces per level.
  std::string dump(int indent = 0) const {
    std::ostringstream os;
    write(os, indent, 0);
    return os.str();
  }

  /// Input guards for parse().  The defaults are generous for trusted
  /// artifacts (BENCH_*.json, post-mortem bundles); layers that feed the
  /// parser untrusted bytes — the serve RPC layer — pass their own
  /// ceilings.  Violations are explicit ApiErrors, never silent
  /// truncation and never an unbounded recursion.
  struct ParseLimits {
    /// Maximum input length in bytes.
    std::size_t max_bytes = 64u << 20;
    /// Maximum object/array nesting depth (each level is one native
    /// recursion frame, so this bounds stack use).
    std::size_t max_depth = 128;
  };

  /// Parses with the default limits.
  static Json parse(std::string_view text) { return parse(text, ParseLimits()); }

  /// Parses a JSON document.  Strict: one value, nothing but whitespace
  /// after it; throws ApiError with a byte offset on malformed input,
  /// and up front when the input breaches `limits`.
  static Json parse(std::string_view text, const ParseLimits& limits) {
    if (text.size() > limits.max_bytes) {
      throw ApiError("JSON input of " + std::to_string(text.size()) +
                     " bytes exceeds the limit of " +
                     std::to_string(limits.max_bytes) + " bytes");
    }
    Parser p{text, 0, 0, limits.max_depth};
    Json v = p.value();
    p.skip_ws();
    if (p.pos != text.size()) p.fail("trailing characters after the value");
    return v;
  }

 private:
  enum class Kind { kNull, kBool, kInt, kUInt, kDouble, kString, kArray,
                    kObject };

  struct Parser {
    std::string_view text;
    std::size_t pos;
    std::size_t depth;
    std::size_t max_depth;

    [[noreturn]] void fail(const std::string& what) const {
      throw ApiError("JSON parse error at byte " + std::to_string(pos) +
                     ": " + what);
    }
    void skip_ws() {
      while (pos < text.size() &&
             (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
              text[pos] == '\r')) {
        ++pos;
      }
    }
    char peek() {
      if (pos >= text.size()) fail("unexpected end of input");
      return text[pos];
    }
    void expect(char c) {
      if (peek() != c) fail(std::string("expected '") + c + "'");
      ++pos;
    }
    bool consume_word(std::string_view w) {
      if (text.substr(pos, w.size()) != w) return false;
      pos += w.size();
      return true;
    }

    Json value() {
      skip_ws();
      switch (peek()) {
        case '{':
        case '[': {
          if (depth >= max_depth) {
            fail("nesting deeper than the limit of " +
                 std::to_string(max_depth) + " levels");
          }
          ++depth;
          Json v = text[pos] == '{' ? object() : array();
          --depth;
          return v;
        }
        case '"': return Json(string());
        case 't':
          if (consume_word("true")) return Json(true);
          fail("bad literal");
        case 'f':
          if (consume_word("false")) return Json(false);
          fail("bad literal");
        case 'n':
          if (consume_word("null")) return Json();
          fail("bad literal");
        default: return number();
      }
    }

    Json object() {
      expect('{');
      Json o = Json::object();
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return o;
      }
      for (;;) {
        skip_ws();
        std::string key = string();
        skip_ws();
        expect(':');
        o.set(std::move(key), value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return o;
      }
    }

    Json array() {
      expect('[');
      Json a = Json::array();
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return a;
      }
      for (;;) {
        a.push(value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return a;
      }
    }

    std::string string() {
      expect('"');
      std::string out;
      for (;;) {
        const char c = peek();
        ++pos;
        if (c == '"') return out;
        if (c != '\\') {
          out.push_back(c);
          continue;
        }
        const char e = peek();
        ++pos;
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = peek();
              ++pos;
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // UTF-8 encode the code point (surrogate pairs are passed
            // through as-is; the writer never emits them).
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            }
            break;
          }
          default: fail("bad escape");
        }
      }
    }

    Json number() {
      const std::size_t start = pos;
      if (pos < text.size() && text[pos] == '-') ++pos;
      bool integral = true;
      while (pos < text.size()) {
        const char c = text[pos];
        if (c >= '0' && c <= '9') {
          ++pos;
        } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                   c == '-') {
          integral = false;
          ++pos;
        } else {
          break;
        }
      }
      const std::string_view tok = text.substr(start, pos - start);
      if (tok.empty() || tok == "-") fail("bad number");
      const char* first = tok.data();
      const char* last = tok.data() + tok.size();
      if (integral) {
        if (tok[0] == '-') {
          std::int64_t v = 0;
          const auto [p, ec] = std::from_chars(first, last, v);
          if (ec == std::errc() && p == last) return Json(v);
        } else {
          std::uint64_t v = 0;
          const auto [p, ec] = std::from_chars(first, last, v);
          if (ec == std::errc() && p == last) {
            if (v <= 0x7fffffffffffffffull) {
              // Small magnitudes normalize to the signed kind so that
              // parse(dump(Json(int))) round-trips through set()/push()
              // chains uniformly; as_uint accepts both.
              return Json(static_cast<std::int64_t>(v));
            }
            return Json(v);
          }
        }
        // Out-of-range integer literal: fall through to double.
      }
      double d = 0;
      const auto [p, ec] = std::from_chars(first, last, d);
      if (ec != std::errc() || p != last) fail("bad number");
      return Json(d);
    }
  };

  static void write_escaped(std::ostringstream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
      switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        case '\r': os << "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            const char* hex = "0123456789abcdef";
            os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
          } else {
            os << c;
          }
      }
    }
    os << '"';
  }

  void write(std::ostringstream& os, int indent, int depth) const {
    const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
    const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
    const char* nl = indent > 0 ? "\n" : "";
    switch (kind_) {
      case Kind::kNull: os << "null"; break;
      case Kind::kBool: os << (bool_ ? "true" : "false"); break;
      case Kind::kInt: os << int_; break;
      case Kind::kUInt: os << uint_; break;
      case Kind::kDouble: {
        // Shortest round-trippable form, locale-independent.
        std::ostringstream tmp;
        tmp.imbue(std::locale::classic());
        tmp.precision(17);
        tmp << double_;
        os << tmp.str();
        break;
      }
      case Kind::kString: write_escaped(os, str_); break;
      case Kind::kArray: {
        if (elements_.empty()) {
          os << "[]";
          break;
        }
        os << '[' << nl;
        for (std::size_t i = 0; i < elements_.size(); ++i) {
          if (indent > 0) os << pad;
          elements_[i].write(os, indent, depth + 1);
          if (i + 1 < elements_.size()) os << ',';
          os << nl;
        }
        if (indent > 0) os << close_pad;
        os << ']';
        break;
      }
      case Kind::kObject: {
        if (members_.empty()) {
          os << "{}";
          break;
        }
        os << '{' << nl;
        for (std::size_t i = 0; i < members_.size(); ++i) {
          if (indent > 0) os << pad;
          write_escaped(os, members_[i].first);
          os << (indent > 0 ? ": " : ":");
          members_[i].second.write(os, indent, depth + 1);
          if (i + 1 < members_.size()) os << ',';
          os << nl;
        }
        if (indent > 0) os << close_pad;
        os << '}';
        break;
      }
    }
  }

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0;
  std::string str_;
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace liplib
