// liplib/support/json.hpp
//
// A minimal JSON value builder with deterministic serialization: object
// keys keep insertion order and numbers are emitted exactly (integers as
// integers, rationals as "num/den" strings), so two structurally equal
// documents built in the same order serialize byte-identically.  This is
// what the campaign aggregation layer and the machine-readable bench
// outputs rely on — no locale, no float formatting drift, no hash-map
// ordering.

#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "liplib/support/check.hpp"
#include "liplib/support/rational.hpp"

namespace liplib {

/// An ordered JSON value (null, bool, integer, double, string, array,
/// object).  Build with the static factories and set()/push(); serialize
/// with dump().
class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}  // NOLINT
  Json(std::uint64_t v)  // NOLINT
      : kind_(Kind::kUInt), uint_(v) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}  // NOLINT
  Json(unsigned v) : kind_(Kind::kUInt), uint_(v) {}  // NOLINT
  Json(double v) : kind_(Kind::kDouble), double_(v) {}  // NOLINT
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::kString), str_(s) {}  // NOLINT
  /// Rationals serialize as the exact string "num/den" (or "num").
  Json(const Rational& r)  // NOLINT
      : kind_(Kind::kString), str_(r.str()) {}

  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  /// Sets a key on an object (insertion-ordered; duplicate keys are a
  /// caller bug).  Returns *this for chaining.
  Json& set(std::string key, Json value) {
    LIPLIB_EXPECT(kind_ == Kind::kObject, "Json::set on a non-object");
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// Appends an element to an array.  Returns *this for chaining.
  Json& push(Json value) {
    LIPLIB_EXPECT(kind_ == Kind::kArray, "Json::push on a non-array");
    elements_.push_back(std::move(value));
    return *this;
  }

  bool empty() const { return members_.empty() && elements_.empty(); }

  /// Serializes the value.  indent = 0: compact one-line form; indent > 0:
  /// pretty-printed with that many spaces per level.
  std::string dump(int indent = 0) const {
    std::ostringstream os;
    write(os, indent, 0);
    return os.str();
  }

 private:
  enum class Kind { kNull, kBool, kInt, kUInt, kDouble, kString, kArray,
                    kObject };

  static void write_escaped(std::ostringstream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
      switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        case '\r': os << "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            const char* hex = "0123456789abcdef";
            os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
          } else {
            os << c;
          }
      }
    }
    os << '"';
  }

  void write(std::ostringstream& os, int indent, int depth) const {
    const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
    const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
    const char* nl = indent > 0 ? "\n" : "";
    switch (kind_) {
      case Kind::kNull: os << "null"; break;
      case Kind::kBool: os << (bool_ ? "true" : "false"); break;
      case Kind::kInt: os << int_; break;
      case Kind::kUInt: os << uint_; break;
      case Kind::kDouble: {
        // Shortest round-trippable form, locale-independent.
        std::ostringstream tmp;
        tmp.imbue(std::locale::classic());
        tmp.precision(17);
        tmp << double_;
        os << tmp.str();
        break;
      }
      case Kind::kString: write_escaped(os, str_); break;
      case Kind::kArray: {
        if (elements_.empty()) {
          os << "[]";
          break;
        }
        os << '[' << nl;
        for (std::size_t i = 0; i < elements_.size(); ++i) {
          if (indent > 0) os << pad;
          elements_[i].write(os, indent, depth + 1);
          if (i + 1 < elements_.size()) os << ',';
          os << nl;
        }
        if (indent > 0) os << close_pad;
        os << ']';
        break;
      }
      case Kind::kObject: {
        if (members_.empty()) {
          os << "{}";
          break;
        }
        os << '{' << nl;
        for (std::size_t i = 0; i < members_.size(); ++i) {
          if (indent > 0) os << pad;
          write_escaped(os, members_[i].first);
          os << (indent > 0 ? ": " : ":");
          members_[i].second.write(os, indent, depth + 1);
          if (i + 1 < members_.size()) os << ',';
          os << nl;
        }
        if (indent > 0) os << close_pad;
        os << '}';
        break;
      }
    }
  }

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0;
  std::string str_;
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace liplib
