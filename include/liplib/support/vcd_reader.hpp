// liplib/support/vcd_reader.hpp
//
// Minimal VCD (value change dump) reader: the inverse of VcdWriter, used
// to post-process dumped waveforms — e.g. re-checking the protocol's
// hold-on-stop invariant directly on the waves a run produced, the way a
// verification engineer would eyeball them in GTKWave.
//
// Supports the subset VcdWriter emits (plus common variants): $var wire
// declarations, #timestamps, scalar changes `0!`/`1!`/`x!` and vector
// changes `b1010 !`.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace liplib {

/// A parsed VCD file.
class VcdDump {
 public:
  /// One recorded change; `value` is nullopt for 'x' (unknown).
  struct Change {
    std::uint64_t time = 0;
    std::optional<std::uint64_t> value;
  };

  /// Parses a dump; throws ApiError on malformed input.
  static VcdDump parse(std::istream& in);
  static VcdDump parse_string(const std::string& text);

  /// Declared signal names (fully scoped as "scope.name").
  std::vector<std::string> signal_names() const;

  /// True if a signal of this name was declared.
  bool has_signal(const std::string& name) const;

  /// The change list of a signal (ascending time).
  const std::vector<Change>& changes(const std::string& name) const;

  /// The value of a signal as of time `t` (last change at or before t);
  /// nullopt when unknown ('x' or never driven).
  std::optional<std::uint64_t> value_at(const std::string& name,
                                        std::uint64_t t) const;

  /// Largest timestamp seen.
  std::uint64_t end_time() const { return end_time_; }

 private:
  std::map<std::string, std::size_t> by_name_;   // name -> signal index
  std::map<std::string, std::size_t> by_code_;   // id code -> signal index
  std::vector<std::vector<Change>> changes_;
  std::uint64_t end_time_ = 0;
};

}  // namespace liplib
