// liplib/support/rng.hpp
//
// Deterministic pseudo-random number generation for tests, benchmarks and
// random-topology generators.  liplib never uses std::rand or global state:
// every randomized component takes an Rng by reference so that experiments
// are reproducible from a printed seed.

#pragma once

#include <cstdint>

namespace liplib {

/// xoshiro256** 1.0 (Blackman & Vigna) — small, fast, high quality, and
/// fully deterministic across platforms, which std::mt19937 distributions
/// are not.
class Rng {
 public:
  /// Seeds the generator with SplitMix64 expansion of `seed` so that
  /// small / adjacent seeds still produce well-mixed states.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound) for bound >= 1 (unbiased rejection).
  std::uint64_t below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform value in the inclusive range [lo, hi].
  std::uint64_t in_range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli draw: true with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

  /// Uniform double in [0, 1).
  double unit() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace liplib
