// liplib/support/table.hpp
//
// Plain-text table rendering used by the benchmark harnesses to print the
// paper's tables and figure series in a uniform, diffable format.

#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace liplib {

/// Accumulates rows of strings and renders them with aligned columns.
///
///   Table t({"S", "R", "T analytic", "T measured"});
///   t.add_row({"2", "3", "2/5", "2/5"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends one row.  Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> cells) {
    cells.resize(header_.size());
    rows_.push_back(std::move(cells));
  }

  std::size_t row_count() const { return rows_.size(); }

  /// Renders RFC-4180-style CSV (quotes cells containing comma, quote or
  /// newline), one header row then the data rows — for piping bench
  /// tables into plotting tools.
  void print_csv(std::ostream& os) const {
    print_csv_row(os, header_);
    for (const auto& row : rows_) print_csv_row(os, row);
  }

  /// Renders the table with a header rule, two-space column gaps.
  void print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
      width[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    }
    print_row(os, header_, width);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c) {
      if (c) rule += "  ";
      rule.append(width[c], '-');
    }
    os << rule << '\n';
    for (const auto& row : rows_) print_row(os, row, width);
  }

 private:
  static void print_csv_row(std::ostream& os,
                            const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const std::string& cell = row[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  }

  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& width) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) line += "  ";
      line += row[c];
      if (row[c].size() < width[c]) line.append(width[c] - row[c].size(), ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    os << line << '\n';
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace liplib
