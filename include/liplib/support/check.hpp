// liplib/support/check.hpp
//
// Precondition / invariant checking for liplib.
//
// The library distinguishes three failure classes:
//  - ApiError:      the caller violated a documented precondition of the
//                   public API (e.g. connected a channel twice).
//  - ProtocolError: a simulated environment violated a latency-insensitive
//                   protocol assumption (e.g. changed a datum while its stop
//                   was asserted).  These are raised by runtime monitors.
//  - InternalError: a liplib invariant broke; always a bug in liplib.
//
// All three derive from std::logic_error / std::runtime_error so user code
// can catch broadly.

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace liplib {

/// Thrown when a caller violates a documented precondition of the API.
class ApiError : public std::logic_error {
 public:
  explicit ApiError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown by runtime monitors when a simulated environment or block
/// violates a latency-insensitive protocol assumption.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an internal invariant of liplib breaks (a liplib bug).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_api_error(const char* cond, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "API precondition failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ApiError(os.str());
}

[[noreturn]] inline void throw_internal_error(const char* cond,
                                              const char* file, int line,
                                              const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace liplib

/// Check a documented precondition of a public API entry point.
#define LIPLIB_EXPECT(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::liplib::detail::throw_api_error(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                     \
  } while (false)

/// Check an internal invariant; failure is a liplib bug.
#define LIPLIB_ENSURE(cond, msg)                                               \
  do {                                                                         \
    if (!(cond)) {                                                             \
      ::liplib::detail::throw_internal_error(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                          \
  } while (false)
