// liplib/support/metrics.hpp
//
// Deterministic metric primitives for fleet-level telemetry: a counter, a
// gauge, and a log2-bucketed histogram of unsigned samples.  Everything
// here is integer-exact and serializes byte-stably through support/json,
// so campaign aggregates that fold thousands of per-job measurements stay
// byte-identical at any worker-thread count (the values are folded from
// the job-index-ordered result vector, never from shared mutable state).
//
// The histogram buckets are powers of two: bucket 0 holds the sample 0,
// bucket b >= 1 holds samples in [2^(b-1), 2^b).  Percentiles are
// nearest-rank over the bucket counts and report the bucket's inclusive
// upper bound — a deterministic over-approximation whose error is bounded
// by the bucket width (exact tracked min/max are reported alongside).

#pragma once

#include <cstdint>
#include <string>

#include "liplib/support/check.hpp"
#include "liplib/support/json.hpp"

namespace liplib::metrics {

/// A monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A last-writer-wins instantaneous value.
class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t delta) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Log2-bucketed histogram of std::uint64_t samples.
class LogHistogram {
 public:
  /// 0 plus one bucket per bit: samples up to 2^63-1... fit bucket 64.
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    total_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
  }

  void merge(const LogHistogram& other) {
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
    if (other.count_ > 0) {
      if (count_ == 0 || other.min_ < min_) min_ = other.min_;
      if (count_ == 0 || other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
    total_ += other.total_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t total() const { return total_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return count_ ? max_ : 0; }
  std::uint64_t bucket(std::size_t b) const { return buckets_[b]; }

  /// Which bucket a sample lands in.
  static std::size_t bucket_of(std::uint64_t v) {
    std::size_t b = 0;
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return b;  // 0 for v == 0, floor(log2(v)) + 1 otherwise
  }
  /// Inclusive upper bound of a bucket (the value a percentile reports).
  static std::uint64_t bucket_hi(std::size_t b) {
    if (b == 0) return 0;
    if (b >= 64) return ~0ull;
    return (1ull << b) - 1;
  }
  /// Inclusive lower bound of a bucket.
  static std::uint64_t bucket_lo(std::size_t b) {
    return b <= 1 ? b : (1ull << (b - 1));
  }

  /// Nearest-rank percentile (p in [0, 100]): the inclusive upper bound
  /// of the bucket holding the ceil(p/100 * count)-th smallest sample.
  /// p = 0 reports the exact minimum, p = 100 is clamped by the exact
  /// maximum; an empty histogram reports 0.
  std::uint64_t percentile(double p) const {
    LIPLIB_EXPECT(p >= 0 && p <= 100, "percentile must be in [0, 100]");
    if (count_ == 0) return 0;
    if (p <= 0) return min_;
    // ceil(p * count / 100) without floating-point rank drift: percentile
    // arguments are multiples of 0.5 in practice, but guard generally.
    std::uint64_t rank =
        static_cast<std::uint64_t>((p * static_cast<double>(count_) + 99.0) /
                                   100.0);
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += buckets_[b];
      if (seen >= rank) {
        const std::uint64_t hi = bucket_hi(b);
        return hi > max_ ? max_ : hi;
      }
    }
    return max_;
  }

  /// Schema "liplib.loghist/1": count/total/min/max plus the non-empty
  /// buckets ({lo, hi, n}) and the standard percentile ladder.
  Json to_json() const {
    Json buckets = Json::array();
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      buckets.push(Json::object()
                       .set("lo", bucket_lo(b))
                       .set("hi", bucket_hi(b))
                       .set("n", buckets_[b]));
    }
    Json j = Json::object()
                 .set("schema", "liplib.loghist/1")
                 .set("count", count_)
                 .set("total", total_)
                 .set("min", min())
                 .set("max", max())
                 .set("buckets", std::move(buckets));
    Json pct = Json::object();
    for (const double p : {50.0, 90.0, 99.0}) {
      pct.set("p" + std::to_string(static_cast<int>(p)), percentile(p));
    }
    j.set("percentiles", std::move(pct));
    return j;
  }

  /// Reconstructs a histogram from its to_json() document.  Exact:
  /// every merge-relevant field (bucket counts, count, total, min, max)
  /// round-trips, so from_json(h.to_json()).to_json() is byte-identical
  /// to h.to_json() — the property the distributed aggregate merge
  /// relies on.  Throws ApiError on a malformed or mis-tagged document.
  static LogHistogram from_json(const Json& j) {
    const Json* schema = j.find("schema");
    LIPLIB_EXPECT(schema && schema->is_string() &&
                      schema->as_string() == "liplib.loghist/1",
                  "loghist document missing schema liplib.loghist/1");
    auto uint_of = [&j](const char* key) {
      const Json* f = j.find(key);
      LIPLIB_EXPECT(f && f->is_number(),
                    std::string("loghist field '") + key +
                        "' missing or non-numeric");
      return f->as_uint();
    };
    LogHistogram h;
    h.count_ = uint_of("count");
    h.total_ = uint_of("total");
    h.min_ = uint_of("min");
    h.max_ = uint_of("max");
    const Json* buckets = j.find("buckets");
    LIPLIB_EXPECT(buckets && buckets->is_array(),
                  "loghist document missing 'buckets'");
    std::uint64_t sum = 0;
    for (const Json& b : buckets->elements()) {
      const Json* lo = b.find("lo");
      const Json* n = b.find("n");
      LIPLIB_EXPECT(lo && lo->is_number() && n && n->is_number(),
                    "loghist bucket missing 'lo'/'n'");
      const std::size_t idx = bucket_of(lo->as_uint());
      LIPLIB_EXPECT(bucket_lo(idx) == lo->as_uint(),
                    "loghist bucket 'lo' is not a bucket boundary");
      h.buckets_[idx] += n->as_uint();
      sum += n->as_uint();
    }
    LIPLIB_EXPECT(sum == h.count_,
                  "loghist bucket counts do not sum to 'count'");
    return h;
  }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace liplib::metrics
