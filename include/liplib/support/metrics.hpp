// liplib/support/metrics.hpp
//
// Deterministic metric primitives for fleet-level telemetry: a counter, a
// gauge, and a log2-bucketed histogram of unsigned samples.  Everything
// here is integer-exact and serializes byte-stably through support/json,
// so campaign aggregates that fold thousands of per-job measurements stay
// byte-identical at any worker-thread count (the values are folded from
// the job-index-ordered result vector, never from shared mutable state).
//
// The histogram buckets are powers of two: bucket 0 holds the sample 0,
// bucket b >= 1 holds samples in [2^(b-1), 2^b).  Percentiles are
// nearest-rank over the bucket counts and report the bucket's inclusive
// upper bound — a deterministic over-approximation whose error is bounded
// by the bucket width (exact tracked min/max are reported alongside).
//
// MetricsRegistry names and labels these primitives and exposes them in
// Prometheus text format — the scrapeable face of the serve daemon
// (`metrics` request kind) and the dist coordinator.

#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "liplib/support/check.hpp"
#include "liplib/support/json.hpp"

namespace liplib::metrics {

/// A monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A last-writer-wins instantaneous value.
class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t delta) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Log2-bucketed histogram of std::uint64_t samples.
class LogHistogram {
 public:
  /// 0 plus one bucket per bit: samples up to 2^63-1... fit bucket 64.
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    total_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
  }

  void merge(const LogHistogram& other) {
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
    if (other.count_ > 0) {
      if (count_ == 0 || other.min_ < min_) min_ = other.min_;
      if (count_ == 0 || other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
    total_ += other.total_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t total() const { return total_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return count_ ? max_ : 0; }
  std::uint64_t bucket(std::size_t b) const { return buckets_[b]; }

  /// Which bucket a sample lands in.
  static std::size_t bucket_of(std::uint64_t v) {
    std::size_t b = 0;
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return b;  // 0 for v == 0, floor(log2(v)) + 1 otherwise
  }
  /// Inclusive upper bound of a bucket (the value a percentile reports).
  static std::uint64_t bucket_hi(std::size_t b) {
    if (b == 0) return 0;
    if (b >= 64) return ~0ull;
    return (1ull << b) - 1;
  }
  /// Inclusive lower bound of a bucket.
  static std::uint64_t bucket_lo(std::size_t b) {
    return b <= 1 ? b : (1ull << (b - 1));
  }

  /// Nearest-rank percentile (p in [0, 100]): the inclusive upper bound
  /// of the bucket holding the ceil(p/100 * count)-th smallest sample.
  /// p = 0 reports the exact minimum, p = 100 is clamped by the exact
  /// maximum; an empty histogram reports 0.
  std::uint64_t percentile(double p) const {
    LIPLIB_EXPECT(p >= 0 && p <= 100, "percentile must be in [0, 100]");
    if (count_ == 0) return 0;
    if (p <= 0) return min_;
    // ceil(p * count / 100) without floating-point rank drift: percentile
    // arguments are multiples of 0.5 in practice, but guard generally.
    std::uint64_t rank =
        static_cast<std::uint64_t>((p * static_cast<double>(count_) + 99.0) /
                                   100.0);
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += buckets_[b];
      if (seen >= rank) {
        const std::uint64_t hi = bucket_hi(b);
        return hi > max_ ? max_ : hi;
      }
    }
    return max_;
  }

  /// Schema "liplib.loghist/1": count/total/min/max plus the non-empty
  /// buckets ({lo, hi, n}) and the standard percentile ladder.
  Json to_json() const {
    Json buckets = Json::array();
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      buckets.push(Json::object()
                       .set("lo", bucket_lo(b))
                       .set("hi", bucket_hi(b))
                       .set("n", buckets_[b]));
    }
    Json j = Json::object()
                 .set("schema", "liplib.loghist/1")
                 .set("count", count_)
                 .set("total", total_)
                 .set("min", min())
                 .set("max", max())
                 .set("buckets", std::move(buckets));
    Json pct = Json::object();
    for (const double p : {50.0, 90.0, 99.0}) {
      pct.set("p" + std::to_string(static_cast<int>(p)), percentile(p));
    }
    j.set("percentiles", std::move(pct));
    return j;
  }

  /// Reconstructs a histogram from its to_json() document.  Exact:
  /// every merge-relevant field (bucket counts, count, total, min, max)
  /// round-trips, so from_json(h.to_json()).to_json() is byte-identical
  /// to h.to_json() — the property the distributed aggregate merge
  /// relies on.  Throws ApiError on a malformed or mis-tagged document.
  static LogHistogram from_json(const Json& j) {
    const Json* schema = j.find("schema");
    LIPLIB_EXPECT(schema && schema->is_string() &&
                      schema->as_string() == "liplib.loghist/1",
                  "loghist document missing schema liplib.loghist/1");
    auto uint_of = [&j](const char* key) {
      const Json* f = j.find(key);
      LIPLIB_EXPECT(f && f->is_number(),
                    std::string("loghist field '") + key +
                        "' missing or non-numeric");
      return f->as_uint();
    };
    LogHistogram h;
    h.count_ = uint_of("count");
    h.total_ = uint_of("total");
    h.min_ = uint_of("min");
    h.max_ = uint_of("max");
    const Json* buckets = j.find("buckets");
    LIPLIB_EXPECT(buckets && buckets->is_array(),
                  "loghist document missing 'buckets'");
    std::uint64_t sum = 0;
    for (const Json& b : buckets->elements()) {
      const Json* lo = b.find("lo");
      const Json* n = b.find("n");
      LIPLIB_EXPECT(lo && lo->is_number() && n && n->is_number(),
                    "loghist bucket missing 'lo'/'n'");
      const std::size_t idx = bucket_of(lo->as_uint());
      LIPLIB_EXPECT(bucket_lo(idx) == lo->as_uint(),
                    "loghist bucket 'lo' is not a bucket boundary");
      h.buckets_[idx] += n->as_uint();
      sum += n->as_uint();
    }
    LIPLIB_EXPECT(sum == h.count_,
                  "loghist bucket counts do not sum to 'count'");
    return h;
  }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// The kind of a metric family.
enum class MetricType { kCounter, kGauge, kHistogram };

/// A named, labelled registry over the three primitives, exposable in
/// Prometheus text format (version 0.0.4 — the serve daemon's `metrics`
/// request kind returns exactly expose_text()).
///
/// Families are created on first use and typed by that use; a later
/// access under a different type throws ApiError.  Children are keyed
/// by their label set (labels are sorted by key internally, so
/// {a=1,b=2} and {b=2,a=1} are the same child).  Every operation —
/// including expose_text() — takes the registry mutex, so concurrent
/// request threads may record while a scraper reads.
///
/// Exposition is deterministic: families sort by name, children by
/// rendered label string, histogram buckets ascending — a registry with
/// the same contents always exposes the same bytes.
class MetricsRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  /// Attaches HELP text to a family (creates it with `type` if new).
  void describe(const std::string& name, MetricType type,
                const std::string& help) {
    std::lock_guard<std::mutex> lock(mu_);
    Family& f = family_locked(name, type);
    f.help = help;
  }

  void counter_add(const std::string& name, const Labels& labels,
                   std::uint64_t n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    family_locked(name, MetricType::kCounter)
        .counters[label_key(labels)]
        .add(n);
  }

  void gauge_set(const std::string& name, const Labels& labels,
                 std::int64_t v) {
    std::lock_guard<std::mutex> lock(mu_);
    family_locked(name, MetricType::kGauge).gauges[label_key(labels)].set(v);
  }

  void gauge_add(const std::string& name, const Labels& labels,
                 std::int64_t delta) {
    std::lock_guard<std::mutex> lock(mu_);
    family_locked(name, MetricType::kGauge)
        .gauges[label_key(labels)]
        .add(delta);
  }

  void observe(const std::string& name, const Labels& labels,
               std::uint64_t v) {
    std::lock_guard<std::mutex> lock(mu_);
    family_locked(name, MetricType::kHistogram)
        .histograms[label_key(labels)]
        .record(v);
  }

  std::uint64_t counter_value(const std::string& name,
                              const Labels& labels) const {
    std::lock_guard<std::mutex> lock(mu_);
    const Family* f = find_family_locked(name);
    if (!f) return 0;
    const auto it = f->counters.find(label_key(labels));
    return it == f->counters.end() ? 0 : it->second.value();
  }

  std::int64_t gauge_value(const std::string& name,
                           const Labels& labels) const {
    std::lock_guard<std::mutex> lock(mu_);
    const Family* f = find_family_locked(name);
    if (!f) return 0;
    const auto it = f->gauges.find(label_key(labels));
    return it == f->gauges.end() ? 0 : it->second.value();
  }

  /// Sum of sample counts over every child of a histogram family whose
  /// labels include all of `labels` (exact child when all labels are
  /// given, per-dimension subtotal otherwise).
  std::uint64_t histogram_count(const std::string& name,
                                const Labels& labels) const {
    std::lock_guard<std::mutex> lock(mu_);
    const Family* f = find_family_locked(name);
    if (!f) return 0;
    std::uint64_t n = 0;
    for (const auto& [key, h] : f->histograms) {
      bool match = true;
      for (const auto& [lk, lv] : labels) {
        if (key.find(render_label(lk, lv)) == std::string::npos) {
          match = false;
          break;
        }
      }
      if (match) n += h.count();
    }
    return n;
  }

  /// Prometheus text exposition (content type
  /// "text/plain; version=0.0.4").  Histograms render cumulative
  /// `le`-bucketed series over the non-empty log2 buckets plus "+Inf",
  /// with `_sum` and `_count`.
  std::string expose_text() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const auto& [name, f] : families_) {
      if (!f.help.empty()) {
        out += "# HELP " + name + " " + f.help + "\n";
      }
      out += "# TYPE " + name + " " + type_name(f.type) + "\n";
      switch (f.type) {
        case MetricType::kCounter:
          for (const auto& [key, c] : f.counters) {
            out += name + key + " " + std::to_string(c.value()) + "\n";
          }
          break;
        case MetricType::kGauge:
          for (const auto& [key, g] : f.gauges) {
            out += name + key + " " + std::to_string(g.value()) + "\n";
          }
          break;
        case MetricType::kHistogram:
          for (const auto& [key, h] : f.histograms) {
            std::uint64_t cum = 0;
            for (std::size_t b = 0; b < LogHistogram::kBuckets; ++b) {
              if (h.bucket(b) == 0) continue;
              cum += h.bucket(b);
              out += name + "_bucket" +
                     with_le(key, std::to_string(LogHistogram::bucket_hi(b))) +
                     " " + std::to_string(cum) + "\n";
            }
            out += name + "_bucket" + with_le(key, "+Inf") + " " +
                   std::to_string(h.count()) + "\n";
            out += name + "_sum" + key + " " + std::to_string(h.total()) +
                   "\n";
            out += name + "_count" + key + " " + std::to_string(h.count()) +
                   "\n";
          }
          break;
      }
    }
    return out;
  }

 private:
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::map<std::string, Counter> counters;
    std::map<std::string, Gauge> gauges;
    std::map<std::string, LogHistogram> histograms;
  };

  static const char* type_name(MetricType t) {
    switch (t) {
      case MetricType::kCounter: return "counter";
      case MetricType::kGauge: return "gauge";
      case MetricType::kHistogram: return "histogram";
    }
    return "untyped";
  }

  static std::string escape_label_value(const std::string& v) {
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
      if (c == '\\') out += "\\\\";
      else if (c == '"') out += "\\\"";
      else if (c == '\n') out += "\\n";
      else out.push_back(c);
    }
    return out;
  }

  static std::string render_label(const std::string& k,
                                  const std::string& v) {
    return k + "=\"" + escape_label_value(v) + "\"";
  }

  /// Canonical child key: `{a="1",b="2"}` with keys sorted, or "" for
  /// the label-free child.
  static std::string label_key(Labels labels) {
    if (labels.empty()) return "";
    std::sort(labels.begin(), labels.end());
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i) out.push_back(',');
      out += render_label(labels[i].first, labels[i].second);
    }
    out.push_back('}');
    return out;
  }

  /// Appends the `le` label to a rendered child key.
  static std::string with_le(const std::string& key, const std::string& le) {
    if (key.empty()) return "{le=\"" + le + "\"}";
    std::string out = key;
    out.pop_back();  // trailing '}'
    out += ",le=\"" + le + "\"}";
    return out;
  }

  Family& family_locked(const std::string& name, MetricType type) {
    auto [it, inserted] = families_.try_emplace(name);
    if (inserted) {
      it->second.type = type;
    } else {
      LIPLIB_EXPECT(it->second.type == type,
                    "metric family '" + name +
                        "' already registered with a different type");
    }
    return it->second;
  }

  const Family* find_family_locked(const std::string& name) const {
    const auto it = families_.find(name);
    return it == families_.end() ? nullptr : &it->second;
  }

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace liplib::metrics
