// liplib/support/vcd.hpp
//
// Minimal IEEE-1364 VCD (value change dump) writer.  Both simulators can
// trace valid/stop/data signals into a waveform viewable with GTKWave;
// the skeleton simulator uses it to visualize void/stop propagation, which
// is how the evolution pictures of the paper (Fig. 1 / Fig. 2) were drawn.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace liplib {

/// Streams a VCD file.  Usage:
///   VcdWriter vcd(os, "liplib");
///   auto v = vcd.add_signal("shell_A.valid", 1);
///   vcd.begin_dump();
///   vcd.set_time(0); vcd.change(v, 1);
class VcdWriter {
 public:
  /// Opaque handle to a declared signal.
  using SignalId = std::size_t;

  /// Writes the VCD header into `os` with all signals under one scope.
  /// The stream must outlive the writer.
  VcdWriter(std::ostream& os, std::string scope_name);

  /// Declares a signal of the given bit width.  Must be called before
  /// begin_dump().
  SignalId add_signal(const std::string& name, unsigned width);

  /// Closes the declaration section and emits initial 'x' values.
  void begin_dump();

  /// Advances simulation time (monotone).  Idempotent per timestamp.
  void set_time(std::uint64_t t);

  /// Records a value change; values are truncated to the declared width.
  void change(SignalId id, std::uint64_t value);

 private:
  struct Signal {
    std::string code;
    unsigned width = 1;
    std::uint64_t last = ~0ull;
    bool has_last = false;
  };

  static std::string id_code(std::size_t index);
  void emit(const Signal& s, std::uint64_t value);

  std::ostream& os_;
  std::string scope_;
  std::vector<Signal> signals_;
  bool dumping_ = false;
  std::uint64_t time_ = 0;
  bool time_written_ = false;
};

}  // namespace liplib
