// liplib/serve/cache.hpp
//
// The daemon's content-addressed result cache.
//
// Every cacheable analysis the server performs is a pure function of
// (topology content, protocol policy, seed, request kind, budget) — the
// repo's analyses are deterministic by construction (that is what the
// campaign determinism tests lock down) — so their serialized results
// can be memoized under a key derived from the *content* of the design,
// not its file name or request identity.  Two tenants submitting the
// same netlist text, or the same netlist with different whitespace,
// hash to the same key and the second one is served from memory,
// byte-identical to a fresh computation.
//
// Eviction is TTL + LRU: entries expire `ttl_ms` after insertion (0 =
// never), and when the byte budget overflows the least-recently-used
// entries are dropped.  Hit / miss / insertion / eviction / expiration
// counters are kept with support/metrics.hpp primitives and exported
// through the server's `status` endpoint.
//
// The clock is injectable so TTL behaviour is unit-testable without
// sleeping.

#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "liplib/graph/topology.hpp"
#include "liplib/support/json.hpp"
#include "liplib/support/metrics.hpp"

namespace liplib::serve {

/// FNV-1a 64-bit hash (the content address primitive; stable across
/// platforms and runs, unlike std::hash).
std::uint64_t fnv1a64(std::string_view bytes,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/// Content hash of a topology: FNV-1a over the canonical netlist
/// rendering (graph::write_netlist), so formatting, comments and
/// annotation whitespace in the submitted text never split the cache.
std::uint64_t topology_hash(const graph::Topology& topo);

/// Cache configuration.
struct CacheOptions {
  std::size_t capacity_bytes = 64u << 20;  ///< LRU byte budget (keys+values)
  std::uint64_t ttl_ms = 10 * 60 * 1000;   ///< entry lifetime; 0 = no expiry
};

/// Monotonic counters of one cache instance (a consistent snapshot).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;    ///< dropped by the LRU byte budget
  std::uint64_t expirations = 0;  ///< dropped because the TTL elapsed
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

/// Thread-safe content-addressed result cache with TTL + LRU eviction.
class ResultCache {
 public:
  /// `now_ms` supplies the TTL clock; the default is the process
  /// steady clock.  Tests inject a fake to step time explicitly.
  explicit ResultCache(CacheOptions opts = {},
                       std::function<std::uint64_t()> now_ms = {});

  /// Returns the cached value and refreshes its LRU position, or
  /// nullopt (counting a miss; an entry past its TTL is dropped and
  /// counted as an expiration *and* a miss).
  std::optional<std::string> lookup(const std::string& key);

  /// Inserts (or overwrites) `key`, then evicts LRU entries until the
  /// byte budget holds.  A value bigger than the whole budget is
  /// accepted and evicted alone on the next insertion.  Returns the
  /// number of entries evicted by this insertion (the request handler
  /// turns a non-zero count into a "cache.evict" span event).
  std::size_t insert(const std::string& key, std::string value);

  /// Drops every entry (counters are preserved; the drop is not counted
  /// as eviction).
  void clear();

  CacheStats stats() const;
  const CacheOptions& options() const { return opts_; }

  /// Counter snapshot as a Json object (schema fragment of
  /// "liplib.serve.status/1"): hit/miss/insertion/eviction/expiration
  /// counts, entry/byte occupancy and the configured limits.
  Json stats_json() const;

 private:
  struct Entry {
    std::string key;
    std::string value;
    std::uint64_t expires_ms = 0;  ///< 0 = never
  };
  using LruList = std::list<Entry>;

  /// Caller holds mu_.  Removes `it`, adjusting occupancy.
  void erase_locked(LruList::iterator it);

  CacheOptions opts_;
  std::function<std::uint64_t()> now_ms_;

  mutable std::mutex mu_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::string_view, LruList::iterator> index_;
  std::size_t bytes_ = 0;
  metrics::Counter hits_, misses_, insertions_, evictions_, expirations_;
};

}  // namespace liplib::serve
