// liplib/serve/protocol.hpp
//
// The wire protocol of the lidtool daemon: "liplib.rpc/1", a
// length-prefixed JSON request/response stream over a byte pipe (TCP in
// production, a socketpair in tests).
//
// Framing: every message is a 4-byte big-endian payload length followed
// by that many bytes of UTF-8 JSON.  A frame whose declared length
// exceeds the receiver's limit is a protocol violation (the peer is
// told why and the connection is closed); a stream that ends mid-frame
// is reported as truncation, while EOF on a frame boundary is a clean
// close.
//
// Requests: {"rpc": "liplib.rpc/1", "kind": <kind>, ...} with kinds
// lint | screen | profile | campaign | prove | status | shutdown |
// dist-status | metrics | trace.  Responses
// echo the request's optional "id" verbatim and carry either
// "ok": true plus a "result" document or "ok": false plus "error".
// An optional "trace" envelope member ({"trace_id", "parent_span"},
// liplib/trace) joins the request to a caller-side trace; peers that do
// not know the field ignore it.
// The full field catalog lives in docs/serve.md and docs/trace.md.
//
// Everything here is deliberately free of server state so the codec and
// validation layer can be unit-tested without sockets.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "liplib/support/json.hpp"
#include "liplib/trace/trace.hpp"

namespace liplib::serve {

/// Protocol identifier, sent in every request and response.
inline constexpr const char* kRpcSchema = "liplib.rpc/1";

/// Receive-side framing limits.  The frame cap bounds a single request
/// or response; it is also handed to Json::parse as the byte limit so a
/// hostile peer cannot smuggle an oversized document past the framer.
struct FrameLimits {
  std::size_t max_frame_bytes = 16u << 20;  ///< 16 MiB
};

/// Renders a frame (length prefix + payload) into a byte string.
/// Throws ApiError when the payload exceeds the 32-bit length field.
std::string encode_frame(std::string_view payload);

/// Reads one frame from `fd` into `payload`.  Returns false on a clean
/// EOF at a frame boundary; throws ApiError on truncation (EOF inside a
/// frame), on a declared length beyond `limits`, or on an I/O error.
bool read_frame(int fd, std::string& payload, const FrameLimits& limits = {});

/// Writes one frame to `fd` (retrying on short writes / EINTR).  Throws
/// ApiError on I/O failure; never raises SIGPIPE.
void write_frame(int fd, std::string_view payload);

/// Request kinds of liplib.rpc/1.
enum class RequestKind : std::uint8_t {
  kLint,
  kScreen,
  kProfile,
  kCampaign,
  kProve,
  kStatus,
  kShutdown,
  /// Relay of a distributed-campaign coordinator's status document
  /// (liplib/dist): the daemon queries 127.0.0.1:<port> over
  /// liplib.dist/1 and wraps the answer — fleet dashboards scrape one
  /// endpoint for both the cache and the campaign in flight.
  kDistStatus,
  /// Prometheus text exposition of the daemon's MetricsRegistry
  /// (request-latency histograms split by kind/engine/cache outcome).
  kMetrics,
  /// The daemon's accumulated span document ("liplib.trace/1") — the
  /// scrape side of `lidtool trace`.
  kTrace,
};

/// Number of request kinds (sizes the per-kind counter array).
inline constexpr int kRequestKindCount = 10;

/// Stable wire name of a request kind ("lint", "screen", ...).
const char* request_kind_name(RequestKind k);

/// A validated liplib.rpc/1 request.
struct Request {
  RequestKind kind = RequestKind::kStatus;
  Json id;                   ///< echoed verbatim in the response (null ok)
  std::string netlist;       ///< lint / screen / profile: .lid text
  std::string policy = "variant";  ///< screen / profile: variant | strict
  /// screen / campaign: skeleton evaluator, interp | compiled | sliced
  /// (xir::EngineMode; verdicts are bit-identical across engines, so the
  /// engine is a performance knob that still keys the cache separately).
  std::string engine = "interp";
  std::uint64_t budget = 0;  ///< screen: watchdog cycle budget; 0 = default
  std::uint64_t cycles = 0;  ///< profile: cycles to simulate; 0 = default
  std::string mode = "fuzz";  ///< campaign: fuzz | lint | probe | prove
  std::uint64_t jobs = 0;    ///< campaign: batch size
  std::uint64_t seed = 1;    ///< campaign: base seed
  /// prove: proof method, auto | reach | bmc | induction
  /// (prove::parse_method).
  std::string method = "auto";
  std::uint64_t depth = 0;   ///< prove: BMC depth bound; 0 = default
  bool worst_case = false;   ///< prove: start from worst-case occupancy
  /// dist-status: loopback port of the dist coordinator to query.
  std::uint64_t port = 0;
  /// Optional caller-side trace context (the "trace" envelope member);
  /// disabled (all-zero) when absent.
  trace::TraceContext trace;
};

/// Validates a parsed request document: schema tag, known kind, known
/// policy/mode, required fields present and in range (campaign batches
/// are capped at 1e6 jobs so one tenant cannot monopolize the pool).
/// Throws ApiError with a message suitable for the error envelope.
Request parse_request(const Json& doc);

/// Builds the non-result response envelope for an error:
/// {"rpc", "id", "ok": false, "error"}.
std::string error_envelope(const Json& id, const std::string& message);

/// Builds a success envelope around an already-serialized result
/// document.  The result bytes are spliced verbatim, which is what makes
/// a cache hit byte-identical to the fresh computation:
/// {"rpc", "id", "kind", "ok": true, "cached", "result"}.
std::string success_envelope(const Json& id, RequestKind kind, bool cached,
                             const std::string& result_bytes);

}  // namespace liplib::serve
