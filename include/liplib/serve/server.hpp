// liplib/serve/server.hpp
//
// liplib::serve — the multi-tenant lint/screen/profile daemon.
//
// A Server binds a loopback TCP socket and serves liplib.rpc/1 requests
// (protocol.hpp) from concurrent clients: static lint, watchdog-guarded
// deadlock screening, probe-instrumented profiling, and whole campaign
// batches executed on the campaign engine's chunked work-stealing pool.
// Every cacheable result flows through the content-addressed
// ResultCache (cache.hpp), so a fleet that keeps re-screening the same
// designs is served from memory, byte-for-byte identical to a fresh
// run.
//
// Concurrency model: one accept loop plus one thread per connection
// (bounded by `max_connections`; excess connects queue in the kernel
// backlog).  Single-design requests run on their connection's thread —
// tenant concurrency is connection concurrency — while `campaign`
// requests fan out on a campaign::Engine sized by `threads`.  A
// deadlocked or livelocked design cannot wedge a worker: screening and
// profiling run under the telemetry watchdog and degrade to a DEADLOCK
// verdict carrying the post-mortem bundle.
//
// Shutdown is graceful: a `shutdown` request (or Server::shutdown())
// stops the accept loop, lets every in-flight request finish and
// answer, then closes the connections.  `status` reports cache and
// request counters (support/metrics.hpp) for scraping.
//
// The request handler (handle_payload) is pure protocol — it maps a
// request payload plus a ServeContext to a response payload — so the
// full dispatch/cache layer is unit-testable without sockets.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "liplib/serve/cache.hpp"
#include "liplib/serve/protocol.hpp"
#include "liplib/support/json.hpp"
#include "liplib/support/metrics.hpp"

namespace liplib::serve {

/// Daemon configuration.
struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 = ephemeral (read the bound port back
  /// with Server::port()).
  std::uint16_t port = 0;
  /// Worker threads for `campaign` requests (campaign::EngineOptions::
  /// threads); 0 = hardware concurrency.
  unsigned threads = 0;
  /// Concurrent connections served; further connects wait in the
  /// kernel's listen backlog.
  unsigned max_connections = 64;
  CacheOptions cache;
  FrameLimits limits;
  /// Watchdog-guarded cycle budget for screen requests (and the cap for
  /// profile cycle counts); requests may ask for less, never for more.
  std::uint64_t max_budget = 1u << 20;
  std::uint64_t default_budget = 1u << 18;
  std::uint64_t default_profile_cycles = 10000;
  /// Watchdog no-progress threshold (telemetry::WatchdogOptions).
  std::uint64_t watchdog_threshold = 64;
};

/// Shared state of one daemon instance: options, the result cache, the
/// status counters, the span recorder and the scrapeable metrics
/// registry.  Owned by Server in production; constructed standalone in
/// tests that exercise handle_payload directly.
struct ServeContext {
  /// `now_ms` is the cache TTL clock, `now_us` the span/latency clock;
  /// both default to the process steady clock and are injectable so
  /// trace output is byte-stable in tests.
  explicit ServeContext(ServerOptions options = {},
                        std::function<std::uint64_t()> now_ms = {},
                        std::function<std::uint64_t()> now_us = {});

  ServerOptions opts;
  ResultCache cache;

  std::mutex mu;  ///< guards the counters below
  metrics::Counter requests_total;
  /// Indexed by RequestKind.
  metrics::Counter requests_by_kind[kRequestKindCount];
  metrics::Counter protocol_errors;      ///< malformed frames / requests
  metrics::Counter request_errors;       ///< well-formed requests that failed
  metrics::Counter deadlock_verdicts;    ///< watchdog-tripped answers
  /// Cache hits/misses of engine-keyed requests (screen / campaign),
  /// indexed by xir::EngineMode — the per-engine traffic split of the
  /// status document.
  metrics::Counter engine_hits[3];
  metrics::Counter engine_misses[3];
  metrics::Gauge inflight;               ///< requests being computed now

  /// Request-lifecycle spans (serve.<kind> roots with cache-lookup /
  /// execute children); scraped via the `trace` request kind.
  trace::Recorder recorder;
  /// The scrapeable registry (`metrics` request kind):
  /// liplib_serve_request_latency_us{kind,engine,cache} histograms plus
  /// cache occupancy gauges.  Self-synchronized; not guarded by `mu`.
  metrics::MetricsRegistry registry;

  std::atomic<bool> draining{false};  ///< set by a shutdown request

  /// Counter snapshot for the status document (schema
  /// "liplib.serve.status/2"); includes the cache counters plus the
  /// top-level `evictions` counter and `cache_bytes` gauge.
  Json status_json();
};

/// Maps one request payload to one response payload: parse + validate,
/// consult the cache, compute on miss, insert, wrap in the envelope.
/// Never throws — every failure becomes an {"ok": false} envelope.
/// This is the whole daemon except the sockets.
std::string handle_payload(std::string_view payload, ServeContext& ctx);

/// The TCP daemon.  start() binds and spawns the accept loop; wait()
/// blocks until a shutdown request (or shutdown()) has drained the
/// in-flight work and every connection is closed.
class Server {
 public:
  explicit Server(ServerOptions opts = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:<port> and starts accepting.  Throws ApiError when
  /// the port cannot be bound.
  void start();

  /// The bound port (valid after start(); resolves port 0 requests).
  std::uint16_t port() const { return port_; }

  /// Blocks until the daemon has fully drained after a shutdown.
  void wait();

  /// Programmatic graceful shutdown (idempotent): equivalent to
  /// receiving a `shutdown` request.
  void shutdown();

  ServeContext& context() { return ctx_; }

 private:
  void accept_loop();
  void serve_connection(int fd);
  void begin_drain();

  ServeContext ctx_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;  ///< open connection fds (for drain wakeup)
  unsigned active_ = 0;
  std::condition_variable conn_cv_;
  std::atomic<bool> stopping_{false};
  std::once_flag drain_once_;
};

}  // namespace liplib::serve
