// liplib/formal/checker.hpp
//
// A small explicit-state model checker, standing in for the SMV runs of
// the paper.  The paper verified, at RT level and under an environment
// assumption ("all inputs keep their values on asserted stops"):
//   shells:         coherent data, in-order outputs, no skipped outputs;
//   relay stations: in-order outputs, no skipped outputs, output held on
//                   asserted stops.
// These are finite-state safety properties over a block composed with a
// nondeterministic environment; exhaustive breadth-first reachability is
// sound and complete for them, which is exactly the guarantee SMV gives.
//
// A Model enumerates, for each reachable state, all successor states (one
// per environment choice), flagging protocol violations detected by the
// in-model monitors.  check_safety explores the full reachable state
// space and returns either a clean bill with the state count, or a
// violation with a minimal-length counterexample trace.
//
// liplib::prove composes whole topologies onto this interface (its
// SkeletonModel adapter); docs/prove.md carries the shared contract.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "liplib/support/json.hpp"

namespace liplib::formal {

/// One successor of a state under one environment choice.
struct Succ {
  /// Encoded successor state (any byte string; must be canonical).
  std::string state;
  /// Human-readable label of the environment choice (for traces).
  std::string choice;
  /// Set when the transition trips a monitor.
  std::optional<std::string> violation;
};

/// A finite transition system with embedded safety monitors.
class Model {
 public:
  virtual ~Model() = default;

  /// Canonical encoding of the initial state.
  virtual std::string initial() const = 0;

  /// All successors of `state`, one per environment choice.  Must be
  /// deterministic in `state` (same input, same output order).
  virtual std::vector<Succ> successors(const std::string& state) const = 0;

  /// Pretty-prints a state for counterexample traces.
  virtual std::string describe(const std::string& state) const {
    std::string hex;
    for (unsigned char c : state) {
      static const char* digits = "0123456789abcdef";
      hex += digits[c >> 4];
      hex += digits[c & 15];
    }
    return hex;
  }
};

/// One step of a structured counterexample trace.  The first step is the
/// initial state with an empty choice; each later step records the
/// environment choice taken from its predecessor.
struct TraceStep {
  std::string choice;     ///< environment choice ("" on the initial step)
  std::string state;      ///< canonical encoded state (raw bytes)
  std::string described;  ///< Model::describe rendering
};

/// Outcome of exhaustive reachability.
struct CheckResult {
  bool ok = false;
  bool exhausted_budget = false;       ///< state budget hit before closure
  std::uint64_t states_explored = 0;   ///< distinct states visited
  std::uint64_t transitions = 0;       ///< transitions expanded
  /// Peak bytes of search bookkeeping: visited keys + parent choice
  /// labels + per-record overhead + the frontier (which stores pointers
  /// into the visited set, not state copies).  formal_test bounds this
  /// at roughly one state copy per explored state.
  std::uint64_t peak_tracked_bytes = 0;
  std::string violation;               ///< first (minimal-depth) violation
  std::string violation_choice;        ///< choice that tripped the monitor
  /// Structured counterexample from the initial state to the state whose
  /// `violation_choice` successor trips the monitor.  Empty when ok.
  std::vector<TraceStep> steps;
  /// Flat human rendering of the same counterexample: described states
  /// interleaved with the environment choices taken.
  std::vector<std::string> trace;

  /// Machine rendering, schema "liplib.check/1" (stable field names;
  /// states hex-encoded; same conventions as lint diagnostic JSON).
  Json to_json() const;
};

/// Explores every reachable state (BFS, so counterexamples are minimal in
/// depth) up to `max_states`; stops at the first violation.
CheckResult check_safety(const Model& model,
                         std::uint64_t max_states = 1u << 22);

}  // namespace liplib::formal
