// liplib/formal/checker.hpp
//
// A small explicit-state model checker, standing in for the SMV runs of
// the paper.  The paper verified, at RT level and under an environment
// assumption ("all inputs keep their values on asserted stops"):
//   shells:         coherent data, in-order outputs, no skipped outputs;
//   relay stations: in-order outputs, no skipped outputs, output held on
//                   asserted stops.
// These are finite-state safety properties over a block composed with a
// nondeterministic environment; exhaustive breadth-first reachability is
// sound and complete for them, which is exactly the guarantee SMV gives.
//
// A Model enumerates, for each reachable state, all successor states (one
// per environment choice), flagging protocol violations detected by the
// in-model monitors.  check_safety explores the full reachable state
// space and returns either a clean bill with the state count, or a
// violation with a minimal-length counterexample trace.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace liplib::formal {

/// One successor of a state under one environment choice.
struct Succ {
  /// Encoded successor state (any byte string; must be canonical).
  std::string state;
  /// Human-readable label of the environment choice (for traces).
  std::string choice;
  /// Set when the transition trips a monitor.
  std::optional<std::string> violation;
};

/// A finite transition system with embedded safety monitors.
class Model {
 public:
  virtual ~Model() = default;

  /// Canonical encoding of the initial state.
  virtual std::string initial() const = 0;

  /// All successors of `state`, one per environment choice.  Must be
  /// deterministic in `state` (same input, same output order).
  virtual std::vector<Succ> successors(const std::string& state) const = 0;

  /// Pretty-prints a state for counterexample traces.
  virtual std::string describe(const std::string& state) const {
    std::string hex;
    for (unsigned char c : state) {
      static const char* digits = "0123456789abcdef";
      hex += digits[c >> 4];
      hex += digits[c & 15];
    }
    return hex;
  }
};

/// Outcome of exhaustive reachability.
struct CheckResult {
  bool ok = false;
  bool exhausted_budget = false;       ///< state budget hit before closure
  std::uint64_t states_explored = 0;   ///< distinct states visited
  std::uint64_t transitions = 0;       ///< transitions expanded
  std::string violation;               ///< first (minimal-depth) violation
  /// Counterexample: described states from initial to the bad transition,
  /// interleaved with the environment choices taken.
  std::vector<std::string> trace;
};

/// Explores every reachable state (BFS, so counterexamples are minimal in
/// depth) up to `max_states`; stops at the first violation.
CheckResult check_safety(const Model& model,
                         std::uint64_t max_states = 1u << 22);

}  // namespace liplib::formal
