// liplib/formal/protocol_models.hpp
//
// Finite-state models of the protocol blocks composed with nondeterministic
// environments and safety monitors — the inputs to formal::check_safety.
// These encode the paper's SMV verification obligations:
//
//   relay stations (full and half), in an environment whose valid inputs
//   are ordered and held on asserted stops:
//     - outputs are produced in the correct order,
//     - no valid output is skipped (and none duplicated),
//     - the output is kept on asserted stops;
//
//   shells (any input arity, any output fanout), same environment
//   assumption per input:
//     - coherent data: the k-th tokens of all input streams are consumed
//       together (checked by tagging each stream and comparing at firing),
//     - outputs in the correct order, none skipped, held on stop.
//
// Data independence lets a small tag alphabet stand for arbitrary data:
// tags run modulo `tag_mod`, which is sound as long as tag_mod exceeds the
// number of in-flight tokens a block can hold (≤ 3 for every block here).
//
// The models re-encode the block FSMs independently of lip::System; the
// test suite locks the two encodings together by lockstep comparison, so
// the exhaustive check covers the simulator's semantics, not just its own.

#pragma once

#include <memory>

#include "liplib/formal/checker.hpp"
#include "liplib/graph/topology.hpp"
#include "liplib/lip/token.hpp"

namespace liplib::formal {

/// One relay station (of the given kind) between a nondeterministic
/// producer and a nondeterministic consumer.
std::unique_ptr<Model> make_relay_station_model(graph::RsKind kind,
                                                lip::StopPolicy policy,
                                                unsigned tag_mod = 4);

/// One shell wrapping an identity/pairing pearl, with `num_inputs`
/// tagged input streams (1 or 2) and one output port fanned out to
/// `num_branches` independent consumers (1 or 2).
std::unique_ptr<Model> make_shell_model(unsigned num_inputs,
                                        unsigned num_branches,
                                        lip::StopPolicy policy,
                                        unsigned tag_mod = 4);

/// An end-to-end chain — producer → shell → relay station → shell →
/// consumer — checking in-order, no-skip delivery through a composition,
/// which is the paper's safety notion for whole designs.
std::unique_ptr<Model> make_chain_model(graph::RsKind kind,
                                        lip::StopPolicy policy,
                                        unsigned tag_mod = 6);

/// The Carloni-style baseline shell with a `depth`-deep input FIFO
/// (SystemOptions::input_queue_depth): same obligations as the
/// simplified shell — in order, no skip, held on stop — plus FIFO
/// integrity (no overflow).  tag_mod must exceed depth + 2.
std::unique_ptr<Model> make_buffered_shell_model(unsigned depth,
                                                 lip::StopPolicy policy,
                                                 unsigned tag_mod = 6);

}  // namespace liplib::formal
