// liplib/flow/design_flow.hpp
//
// The end-to-end latency-insensitive design flow the paper implies, as
// one call:
//
//   1. structural validation (station rule, half-RS-on-loop warnings);
//   2. wire-length-driven relay station planning (half off-cycle, full
//      on-cycle);
//   3. skeleton deadlock screening, from reset and under worst-case
//      occupancy, with the substitution cure when a latch is found;
//   4. path equalization (feed-forward designs);
//   5. analytic performance sign-off: loop bound (exact MCR), implicit-
//      loop bound (exact model), paper formulas, transient bound.
//
// The result carries the finished topology plus a human-readable report,
// so a caller can go from a bare structural netlist to a performance-
// signed-off LID in one step (see lidtool's `flow` command).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "liplib/graph/topology.hpp"
#include "liplib/graph/wire_plan.hpp"
#include "liplib/lint/lint.hpp"
#include "liplib/support/rational.hpp"

namespace liplib::flow {

/// Inputs to the flow.
struct FlowOptions {
  /// Per-channel wire lengths; empty = keep the topology's stations as
  /// given (skip the planning step).
  std::vector<double> wire_lengths;
  graph::WirePlanOptions wire;
  /// Screen under worst-case occupancy as well (recommended; finds the
  /// latent half-station latches).
  bool worst_case_screening = true;
  /// Cure latches by substituting full stations when found.
  bool cure = true;
  std::uint64_t screen_budget = 1u << 20;
};

/// Everything the flow decided and proved.
struct FlowResult {
  graph::Topology topology;  ///< the finished design

  bool ok = false;  ///< structure valid, screened live (after cure)
  std::vector<std::string> log;  ///< one line per flow step

  // Step outcomes.
  /// Full lint report (all rules): of the input when validation fails or
  /// the flow aborts early, of the finished topology otherwise.
  lint::Report lint;
  /// Structural subset of `lint` in the legacy shape (gates the flow).
  graph::ValidationReport validation;
  std::size_t stations_inserted = 0;
  std::size_t spare_inserted = 0;
  std::size_t cure_substitutions = 0;
  bool deadlock_from_reset = false;
  bool latch_found = false;
  bool latch_cured = false;

  // Performance sign-off.
  std::optional<Rational> loop_bound;       ///< exact MCR (cyclic only)
  Rational implicit_loop_bound{1};          ///< exact reconvergence model
  Rational predicted_throughput{1};         ///< min of the two
  std::uint64_t transient_bound = 0;
  std::uint64_t measured_transient = 0;     ///< from skeleton screening
  Rational measured_throughput{0};          ///< from skeleton screening

  std::string summary() const;
};

/// Runs the flow on a copy of `topo`.
FlowResult run_design_flow(const graph::Topology& topo,
                           const FlowOptions& options = {});

}  // namespace liplib::flow
