// liplib/dist/coordinator.hpp
//
// The straggler-aware coordinator of a distributed campaign.
//
// A Coordinator binds a loopback TCP socket and speaks "liplib.dist/1"
// — liplib.rpc/1 framing (4-byte big-endian length + JSON payload,
// serve/protocol.hpp) with its own message vocabulary:
//
//   {"rpc":"liplib.dist/1","msg":"lease"}
//       -> {"msg":"lease","manifest":{...liplib.shard/1...}}
//        | {"msg":"wait","retry_ms":N}     every shard leased, none expired
//        | {"msg":"done"}                  every shard merged
//   {"rpc":"liplib.dist/1","msg":"result","partial":{...},"spans":{...}}
//       -> {"msg":"ack","accepted":true|false}
//   {"rpc":"liplib.dist/1","msg":"status"}
//       -> the liplib.dist.status/1 counter document
//   {"rpc":"liplib.dist/1","msg":"metrics"}
//       -> {"msg":"metrics","content_type":...,"text":<Prometheus text>}
//   {"rpc":"liplib.dist/1","msg":"trace"}
//       -> {"msg":"trace","doc":<liplib.trace/1 span document>}
//
// Tracing (CoordinatorOptions::trace): lease responses carry a "trace"
// envelope member ({trace_id, parent_span = the lease's span id});
// workers execute under that context and attach their span document to
// the result message as "spans".  The coordinator folds accepted span
// documents into its own recorder, records one "dist.lease" span per
// merged shard (grant → accepted result), an explicit root-span event
// for every expired-lease re-dispatch and every duplicate drop, and a
// "dist.merge" span around the shard-order fold — so the scraped trace
// is the whole campaign's lease → execute → merge timeline.
//
// Scheduling is pull-based: workers ask for leases, the coordinator
// hands out pending shards with a deadline.  A shard whose lease
// expires (worker died, or is just slow) goes back in the pool on the
// next lease request — re-dispatch is lazy, no timer thread.  Results
// dedup by shard index, first complete wins: the duplicate from a
// straggler that finished after its re-dispatched twin is acknowledged
// (accepted:false) and dropped, which is safe precisely because both
// copies are byte-identical (the determinism argument in docs/dist.md).
// Partial aggregates are folded with campaign::merge in shard order at
// wait(), so the final aggregate is byte-identical to a single-process
// run of the whole campaign.
//
// Connections are served one at a time on the accept thread — a
// coordinator round-trip is a few small frames between loopback peers,
// and serializing them keeps every state transition trivially ordered.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "liplib/campaign/jobs.hpp"
#include "liplib/campaign/report.hpp"
#include "liplib/dist/shard.hpp"
#include "liplib/support/json.hpp"
#include "liplib/support/metrics.hpp"
#include "liplib/trace/trace.hpp"

namespace liplib::dist {

/// Protocol identifier of coordinator/worker messages.
inline constexpr const char* kDistRpcSchema = "liplib.dist/1";

/// Coordinator configuration.
struct CoordinatorOptions {
  /// TCP port on 127.0.0.1; 0 = ephemeral (read back with port()).
  std::uint16_t port = 0;
  /// The campaign to distribute (netlist-free named family).
  campaign::NamedCampaignSpec spec;
  std::uint64_t base_seed = 1;
  std::uint64_t cycle_budget = 1u << 18;
  /// Shards the campaign is split into (>= 1).
  std::size_t shards = 4;
  /// Lease deadline: a shard not submitted within this window is
  /// eligible for re-dispatch to the next asking worker.
  std::uint64_t lease_ms = 30000;
  /// Retry interval suggested to workers when nothing is leasable.
  std::uint64_t wait_ms = 100;
  /// Enables span recording: lease responses carry a trace context,
  /// worker span documents are folded in, and the `trace` message
  /// answers with the campaign's span document.
  bool trace = false;
  /// Span-timestamp clock in microseconds; default = process steady
  /// clock.  Injectable so trace output is byte-stable in tests.  Lease
  /// deadlines keep their own real-time clock regardless.
  std::function<std::uint64_t()> clock_us;
  /// Optional enclosing trace (e.g. a serve request that launched the
  /// campaign).  When disabled the trace id derives from the campaign
  /// spec string's content hash.
  trace::TraceContext parent;
};

/// Scheduling counters (the `status` answer; never part of the
/// deterministic aggregate).
struct CoordinatorStats {
  std::uint64_t leases_issued = 0;  ///< lease responses carrying a shard
  std::uint64_t redispatches = 0;   ///< leases re-issued after expiry
  std::uint64_t duplicates = 0;     ///< results dropped, first-complete-wins
  std::uint64_t bytes_merged = 0;   ///< partial JSON bytes accepted
  std::size_t shards_total = 0;
  std::size_t shards_done = 0;
};

/// The coordinator daemon.  start() binds and serves; wait() blocks
/// until every shard's partial has arrived and returns the merged
/// aggregate.  The listening socket stays open until destruction so
/// late workers still hear "done" instead of a connection error.
class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions opts);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds 127.0.0.1:<port> and starts the accept loop.  Throws
  /// ApiError when the port cannot be bound.
  void start();

  /// The bound port (valid after start(); resolves port 0 requests).
  std::uint16_t port() const { return port_; }

  /// Blocks until all shards are merged; returns the campaign's full
  /// aggregate (byte-identical to a single-process run).
  campaign::Aggregate wait();

  CoordinatorStats stats() const;

  /// The "liplib.dist.status/1" counter document.
  Json status_json() const;

  /// The campaign's "liplib.trace/1" span document: every recorded span
  /// (lease spans, folded worker spans, the merge span) plus the
  /// campaign root span synthesized over [start, now) carrying the
  /// re-dispatch / duplicate events.  Valid whenever tracing is on.
  Json trace_json() const;

  /// Prometheus text exposition of the scheduling registry (outstanding
  /// leases, shards done, expired-lease re-dispatches).
  std::string metrics_text() const;

 private:
  enum class ShardState { kPending, kLeased, kDone };
  struct Slot {
    ShardState state = ShardState::kPending;
    /// steady_clock deadline of the current lease, in ms since an
    /// arbitrary epoch (only compared against now_ms()).
    std::uint64_t deadline_ms = 0;
    campaign::Aggregate aggregate;  ///< valid when kDone
    std::uint64_t lease_span = 0;   ///< span id of the current lease
    std::uint64_t lease_ts_us = 0;  ///< span clock at the current grant
    std::uint64_t attempts = 0;     ///< leases granted for this shard
  };

  void accept_loop();
  void serve_connection(int fd);
  std::string handle_message(const std::string& payload);
  Json handle_lease();
  Json handle_result(const Json& doc, std::size_t payload_bytes);
  static std::uint64_t now_ms();

  CoordinatorOptions opts_;
  std::string campaign_spec_;   ///< named_campaign_to_string(opts_.spec)
  std::size_t total_jobs_ = 0;  ///< job-vector length of the campaign

  /// Trace identity (fixed at construction when tracing is on).
  std::uint64_t trace_id_ = 0;
  std::uint64_t root_span_ = 0;
  std::uint64_t start_us_ = 0;  ///< root-span start (set in start())

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::vector<Slot> slots_;
  CoordinatorStats stats_;
  /// Root-span point events (re-dispatches, duplicate drops); guarded
  /// by mu_ like the stats.
  std::vector<trace::SpanEvent> root_events_;

  trace::Recorder recorder_;
  /// Mutable: the metrics scrape (const) mirrors live slot state into
  /// the registry; the registry is self-synchronized.
  mutable metrics::MetricsRegistry registry_;
};

}  // namespace liplib::dist
