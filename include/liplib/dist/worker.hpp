// liplib/dist/worker.hpp
//
// The pull-side of a distributed campaign: a worker connects to a
// coordinator (coordinator.hpp), asks for shard leases, rebuilds the
// leased slice of the campaign from the manifest alone — the named
// campaign spec string plus the [lo, hi) range — runs it on the
// campaign engine with index_base = lo, and submits the partial
// aggregate.  The loop exits when the coordinator answers "done", or
// when the coordinator has gone away after the worker made progress
// (the coordinator may exit as soon as the last shard merges; a
// trailing poll hitting a closed port is a normal end of campaign, not
// an error).
//
// Workers are connect-per-message: every lease request, result and
// poll is its own TCP connection, so a worker that dies mid-shard
// holds no server-side resources — only a lease that expires.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace liplib::dist {

/// Worker configuration.
struct WorkerOptions {
  /// Coordinator port on 127.0.0.1.
  std::uint16_t port = 0;
  /// Engine threads per shard; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Cap on the coordinator-suggested retry sleep.
  std::uint64_t max_poll_ms = 1000;
  /// Test hook simulating a crash: exit the loop immediately after
  /// *taking* the Nth lease, without computing or submitting it — the
  /// deterministic straggler for the re-dispatch tests.  0 = disabled.
  std::size_t die_after_lease = 0;
  /// Span-timestamp clock (microseconds) for traced shards; default =
  /// process steady clock.  Tracing itself is coordinator-driven: the
  /// worker records spans whenever a lease carries a trace context.
  std::function<std::uint64_t()> clock_us;
};

/// What the loop did (for logs and tests).
struct WorkerStats {
  std::size_t leases = 0;     ///< shard leases obtained
  std::size_t submitted = 0;  ///< partials accepted by the coordinator
  std::size_t rejected = 0;   ///< partials dropped as duplicates
  bool coordinator_gone = false;  ///< loop ended on a dead coordinator
};

/// Runs the pull loop until the campaign is done.  Throws ApiError when
/// the coordinator is unreachable before any lease was obtained (a
/// worker pointed at nothing); a connection failure after progress is a
/// clean exit with coordinator_gone set.
WorkerStats run_worker(const WorkerOptions& opts);

}  // namespace liplib::dist
