// liplib/dist/shard.hpp
//
// The shard planner and deterministic merge of distributed campaigns.
//
// A campaign shards by job-index range alone: shard i of N owns the
// contiguous slice [total*i/N, total*(i+1)/N) of the full job vector.
// Because job identity (index, seed) is a pure function of the campaign
// spec — job seeds are SplitMix64 of (base_seed, global index), and the
// named-campaign builders construct identical job vectors from the same
// spec anywhere — a shard that runs its slice with
// EngineOptions::index_base = lo produces exactly the per-job results
// the unsharded run would have produced for those indices.
//
// Each shard exports a partial document ("liplib.dist.partial/1"): its
// manifest ("liplib.shard/1" — the campaign identity plus the range)
// and the aggregate of its slice.  merge_partials() validates that the
// manifests name the same campaign and that the ranges tile
// [0, total_jobs) exactly, then folds the partial aggregates with
// campaign::merge in range order.  Since merge is the same associative
// fold aggregate() itself uses, the merged document is byte-identical
// to the single-process aggregate at any shard count × thread count
// (docs/dist.md carries the full argument; tests/dist_test.cpp locks
// the matrix).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "liplib/campaign/jobs.hpp"
#include "liplib/campaign/report.hpp"
#include "liplib/support/json.hpp"

namespace liplib::dist {

/// Schema tag of a shard manifest.
inline constexpr const char* kShardSchema = "liplib.shard/1";
/// Schema tag of a partial-aggregate document.
inline constexpr const char* kPartialSchema = "liplib.dist.partial/1";

/// Shard i of N and the job-index slice [lo, hi) it owns.
struct ShardRange {
  std::size_t index = 0;  ///< shard number, 0-based
  std::size_t count = 1;  ///< total shards in the plan
  std::size_t lo = 0;     ///< first owned job index (global)
  std::size_t hi = 0;     ///< one past the last owned index
};

/// The plan: shard i of N owns [total*i/N, total*(i+1)/N) — the same
/// contiguous split the engine uses for its worker slices, so shard
/// sizes differ by at most one job.  Throws ApiError when count == 0 or
/// index >= count.
ShardRange shard_range(std::size_t total_jobs, std::size_t index,
                       std::size_t count);

/// Parses an "i/N" shard token (as in `lidtool campaign --shard 2/4`).
/// Throws ApiError on malformed text, N == 0 or i >= N.
std::pair<std::size_t, std::size_t> parse_shard_token(
    const std::string& text);

/// Identity of one shard of one campaign — everything the merge needs
/// to check that two partials belong together and that the reunited
/// ranges cover the whole campaign.
struct ShardManifest {
  /// Canonical campaign spec string (named_campaign_to_string for the
  /// coordinator transport; lidtool renders its CLI campaigns into the
  /// same role).  Two shards merge only if the strings match.
  std::string campaign;
  /// fnv1a64 of `campaign` — the content hash that travels in leases
  /// and partials so a stale worker cannot pollute a different sweep.
  std::uint64_t campaign_hash = 0;
  std::size_t total_jobs = 0;
  std::uint64_t base_seed = 1;
  std::uint64_t cycle_budget = 0;
  /// Skeleton evaluator name ("interp" | "compiled" | "sliced").
  /// Engines are verdict-identical, but a plan runs one engine and the
  /// merge rejects mixtures so a partial always names its provenance.
  std::string engine = "interp";
  ShardRange shard;
};

/// Builds a manifest (fills campaign_hash from the spec string).
ShardManifest make_manifest(const std::string& campaign_spec,
                            std::size_t total_jobs, std::uint64_t base_seed,
                            std::uint64_t cycle_budget,
                            const std::string& engine, ShardRange shard);

/// "liplib.shard/1" document of a manifest / its strict inverse.
/// manifest_from_json throws ApiError on malformed documents, on a
/// campaign_hash that does not match the spec string, and on a range
/// that does not equal shard_range(total_jobs, index, count).
Json manifest_to_json(const ShardManifest& m);
ShardManifest manifest_from_json(const Json& doc);

/// A shard's exported result: who it was plus what it measured.
struct Partial {
  ShardManifest manifest;
  campaign::Aggregate aggregate;
};

/// "liplib.dist.partial/1" document / its strict inverse.  The
/// aggregate travels as the standard "liplib.campaign.aggregate/2"
/// document, so a partial is also a readable campaign report on its
/// own.  partial_from_json additionally checks that the aggregate's
/// job count equals the manifest's range width.
Json partial_to_json(const ShardManifest& m, const campaign::Aggregate& agg);
Partial partial_from_json(const Json& doc);

/// Validates and merges partials into the campaign's full aggregate:
/// every manifest must name the same campaign (spec string, hash,
/// total_jobs, base_seed, cycle_budget, engine) and the shard ranges
/// must tile [0, total_jobs) exactly — duplicates, gaps and overlaps
/// are all rejected with ApiError.  The fold runs in range order, so
/// the result is byte-identical (via campaign::to_json) to
/// aggregate() of the unsharded run.
campaign::Aggregate merge_partials(std::vector<Partial> parts);

/// Canonical spec string of a named campaign
/// ("mode=fuzz;jobs=300;policy=variant;shape=composite;engine=interp")
/// and its strict inverse.  This is the wire form the coordinator
/// leases to workers; both sides rebuild the identical job vector from
/// it via campaign::make_named_campaign.
std::string named_campaign_to_string(const campaign::NamedCampaignSpec& spec);
campaign::NamedCampaignSpec named_campaign_from_string(
    const std::string& text);

}  // namespace liplib::dist
