// liplib/prove/prove.hpp
//
// liplib::prove — whole-skeleton static verification: bounded model
// checking and k-induction over the protocol state space.
//
// Lint samples the deadlock risk structurally (LIP006) and campaigns
// sample it dynamically (screening millions of scenarios); prove closes
// the gap with an exhaustive answer.  A topology is lowered onto the
// xir flattened IR and its *protocol* state — shell/source pending
// bits, relay-station occupancy, slot validity and registered stops —
// is explored against a nondeterministic environment in which every
// sink independently chooses to assert stop each cycle (sources stay
// always-ready, the paper's environment assumption: inputs are held
// while stops are asserted).  Data never enters the picture: the
// skeleton is the tag-alphabet/data-independence abstraction of the
// full design, so a verdict over it is a verdict over any data binding
// (docs/prove.md gives the soundness argument).
//
// The property: **deadlock freedom** — no reachable state is a
// stop-saturated fixed point, i.e. a state that, under the most
// permissive environment (no sink stops), maps to itself with zero
// shell firings while valid tokens are pending.  Such a state is
// frozen forever: stops only restrict motion, so no environment can
// revive it.  Auxiliary properties ride along: per-cycle token
// conservation (checked on every counterexample path) and the analytic
// throughput bound for consistency cross-checks.
//
// Three engines, one verdict:
//  (a) exhaustive BFS reachability, reusing formal::check_safety over
//      a Model adapter (minimal counterexamples, small designs);
//  (b) bounded model checking to depth k with a bit-sliced frontier —
//      64 (state, environment-choice) pairs packed per machine word,
//      expanded in one settle pass (>= 10x the scalar frontier;
//      bench_prove locks it);
//  (c) k-induction: the bounded base case plus a per-cycle inductive
//      certificate.  A directed cycle of S shells, H half and F full
//      stations latches only in the unique configuration holding
//      S + H + 2F resident valid tokens, and (under the paper's
//      variant protocol) a cycle's resident token count is invariant
//      under *every* transition — so an initial count below the
//      threshold is an unbounded proof that the latch never closes.
//      This is the paper's token-conservation argument, promoted from
//      a lint heuristic to a checked inductive invariant.
//
// A counterexample is emitted as a standard liplib.postmortem/1 bundle
// (the watchdog-guarded greedy run of the same design), so `lidtool
// replay` reproduces the proved deadlock in the simulator at the
// identical cycle with the identical blame.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "liplib/formal/checker.hpp"
#include "liplib/graph/topology.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "liplib/support/json.hpp"
#include "liplib/support/rational.hpp"
#include "liplib/telemetry/watchdog.hpp"
#include "liplib/xir/xir.hpp"

namespace liplib::prove {

/// Proof strategy.
enum class Method : std::uint8_t {
  /// Reachability first; when the state budget runs out before the
  /// space closes, fall back to the k-induction certificates.
  kAuto,
  /// Exhaustive BFS over the reachable space (unbounded proof when it
  /// closes within the state budget).
  kReachability,
  /// Bounded model checking to `depth` transitions; "unknown at bound"
  /// when neither a counterexample nor closure shows up in time.
  kBmc,
  /// k-induction: bounded base case + per-cycle token certificates.
  kInduction,
};

/// Stable lower-case name ("auto", "reach", "bmc", "induction").
const char* method_name(Method m);

/// Inverse of method_name; returns false on an unknown name.
bool parse_method(std::string_view name, Method* out);

/// Outcome class, mapped onto process exit codes by exit_code().
enum class Verdict : std::uint8_t {
  kProved,          ///< deadlock freedom holds in every reachable state
  kCounterexample,  ///< a reachable stop-saturated fixed point exists
  kUnknown,         ///< undecided at the configured bound/budget
};

const char* verdict_name(Verdict v);

struct ProveOptions {
  /// Protocol variant; input_queue_depth must be 0 (the xir lowering
  /// restriction — queued shells stay on the interpreter).
  skeleton::SkeletonOptions skeleton;
  /// Initial state: reset (shell outputs valid, stations empty) or
  /// worst-case occupancy (every station holds one valid token — the
  /// soft-error / saturated-traffic regime of Skeleton::
  /// saturate_stations).
  bool worst_case_occupancy = false;
  Method method = Method::kAuto;
  /// BMC depth bound (transitions from the initial state).  0 picks a
  /// default of transient_bound(topo) + 64 for kBmc/kInduction.
  std::uint64_t depth = 0;
  /// Distinct-state budget for reachability/BMC.
  std::uint64_t max_states = 1u << 20;
  /// Use the bit-sliced frontier (64 expansions per settle pass); the
  /// scalar path is formal::check_safety over the Model adapter.
  /// Verdicts are identical either way.
  bool sliced_frontier = true;
  /// Exhaustive environment enumeration up to 2^max_env_sinks choices
  /// per state (<= 64 keeps one choice set inside a sliced word).
  /// Designs with more sinks are explored with the two extreme
  /// environments only, which can find counterexamples but cannot
  /// prove — the result is then at best kUnknown.
  std::size_t max_env_sinks = 6;
  /// Simple-cycle enumeration budget for the induction certificates
  /// (graph::enumerate_cycles-style); beyond it induction answers
  /// unknown rather than silently under-approximating.
  std::size_t max_cycles = 4096;
};

/// One step of a counterexample trace: the environment choice taken
/// and the state it leads to (canonical encoding; hex in JSON).
struct CexStep {
  std::uint64_t cycle = 0;
  /// Sinks holding stop asserted during this transition (node ids).
  std::vector<graph::NodeId> stopped_sinks;
  std::string state;  ///< canonical encoded state *after* the step
};

/// A minimal-depth reachable deadlock.
struct Counterexample {
  std::uint64_t depth = 0;  ///< transitions from init to the dead state
  std::string dead_state;   ///< canonical encoding of the fixed point
  std::vector<CexStep> steps;  ///< init excluded; steps.size() == depth
  /// The saturated stop cycle blamed for the latch: shells on it and
  /// the channels closing it (lint-diagnostic locus conventions).
  std::vector<graph::NodeId> culprit_shells;
  std::vector<graph::ChannelId> culprit_channels;
  /// True when the greedy environment alone reaches the deadlock — in
  /// that case `postmortem` below replays it in the simulator.
  bool greedy_reproduces = false;
};

/// The k-induction certificate of one directed cycle: its resident
/// valid-token count is conserved by every transition, and the latch
/// configuration needs `dead_threshold` tokens; `tokens` below the
/// threshold is an unbounded proof for this cycle.
struct CycleCertificate {
  std::vector<graph::NodeId> nodes;        ///< shells, in cycle order
  std::vector<graph::ChannelId> channels;  ///< hop channels, in order
  std::size_t shells = 0;
  std::size_t half_stations = 0;
  std::size_t full_stations = 0;
  std::size_t tokens = 0;          ///< resident valid tokens at init
  std::size_t dead_threshold = 0;  ///< == shells + half + 2*full
  bool holds = false;              ///< tokens < dead_threshold
};

struct ProveResult {
  Verdict verdict = Verdict::kUnknown;
  Method method = Method::kAuto;       ///< as requested
  Method method_used = Method::kAuto;  ///< what decided the verdict
  bool worst_case_occupancy = false;
  /// The reachable space was fully explored (exhaustive proof or full
  /// certainty that the counterexample is depth-minimal).
  bool closed = false;
  /// Every enumerated cycle's certificate holds (k-induction proof).
  bool induction_closed = false;
  /// The environment enumeration was exhaustive (see max_env_sinks);
  /// required for any kProved verdict.
  bool env_exhaustive = true;
  std::uint64_t states_explored = 0;
  std::uint64_t transitions = 0;
  std::uint64_t depth_reached = 0;  ///< deepest BFS layer expanded
  std::uint64_t depth_bound = 0;    ///< effective BMC bound (0 = none)
  /// Token conservation held on every checked state (counterexample
  /// path and sampled frontier states); a failure is a prover bug, not
  /// a design bug, and forces kUnknown.
  bool token_conservation_ok = true;
  /// Analytic throughput bound min over cycles of S/(S+R) — reported
  /// for the throughput-consistency cross-check (a proved-live design
  /// must screen at or below it).
  Rational cycle_bound{1};
  std::vector<CycleCertificate> certificates;
  std::optional<Counterexample> counterexample;
  /// Replayable liplib.postmortem/1 bundle of the deadlock (present
  /// when the greedy environment reproduces it — every latch found by
  /// token-reachable saturation does).
  std::optional<telemetry::PostMortem> postmortem;
  std::string note;  ///< why unknown / informational

  /// 0 = proved, 1 = counterexample, 2 = unknown (the lidtool prove
  /// contract; 2 is also the usage-error exit).
  int exit_code() const;
  /// Machine rendering, schema "liplib.prove/1" (stable field names,
  /// node/channel-id loci like lint diagnostics).
  Json to_json(const graph::Topology& topo) const;
  /// Human rendering.
  std::string to_string(const graph::Topology& topo) const;
};

/// Proves (or refutes) deadlock freedom of a topology.  Throws
/// ApiError on structural errors or input_queue_depth != 0 (the same
/// validation as xir::lower).
ProveResult prove(const graph::Topology& topo, ProveOptions opts = {});

/// The formal::Model adapter: the whole-skeleton transition system
/// with per-sink stop nondeterminism and the dead-state monitor wired
/// in as a safety violation.  This is the scalar frontier —
/// formal::check_safety(*make_skeleton_model(...)) is exhaustive BFS
/// reachability over the protocol state space — and the oracle the
/// bit-sliced frontier is differentially tested against.
class SkeletonModel : public formal::Model {
 public:
  ~SkeletonModel() override = default;
  /// Number of environment choices per state (2^sinks, capped).
  virtual std::uint64_t num_env_choices() const = 0;
  virtual bool env_exhaustive() const = 0;
};

std::unique_ptr<SkeletonModel> make_skeleton_model(
    const graph::Topology& topo, const ProveOptions& opts = {});

/// The directed cycles the induction certificates cover, with their
/// initial token counts under `opts`.  Exposed for tests and for the
/// lint cross-check (an all-half cycle's certificate fails exactly
/// when LIP006 fires).  Throws ApiError when `opts.max_cycles` is
/// exceeded.
std::vector<CycleCertificate> cycle_certificates(const graph::Topology& topo,
                                                 const ProveOptions& opts = {});

}  // namespace liplib::prove
