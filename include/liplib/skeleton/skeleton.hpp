// liplib/skeleton/skeleton.hpp
//
// The skeleton simulator: "we are allowed to simulate just the skeleton of
// the system consisting of stop and valid signals, thus the simulation
// cost is absolutely negligible" (paper, liveness section).
//
// A Skeleton simulates only the control plane of a latency-insensitive
// design — validity bits, occupancies and stop wires — with no data
// movement and no pearl evaluation.  Its protocol dynamics are exactly
// those of lip::System (the test suite locks the two together), but its
// state is a few bytes per block, which makes transient-extinction
// screening essentially free.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "liplib/graph/topology.hpp"
#include "liplib/lip/token.hpp"
#include "liplib/support/rational.hpp"

namespace liplib::probe {
class Probe;
}  // namespace liplib::probe

namespace liplib::skeleton {

/// Options mirroring lip::SystemOptions (control plane only).
struct SkeletonOptions {
  lip::StopPolicy policy = lip::StopPolicy::kCasuDiscardOnVoid;
  lip::StopResolution resolution = lip::StopResolution::kPessimistic;
  /// Shell flavour, mirroring lip::SystemOptions::input_queue_depth:
  /// 0 = the paper's simplified shell; k > 0 = Carloni-style shells with
  /// k-deep input FIFOs (the skeleton tracks occupancies only).
  std::size_t input_queue_depth = 0;
};

/// Result of steady-state analysis on the skeleton.
struct SkeletonResult {
  bool found = false;          ///< a period was detected in budget
  std::uint64_t transient = 0; ///< first cycle of the periodic regime
  std::uint64_t period = 0;
  /// Firings per cycle of each process node, in node-id order.
  std::vector<Rational> shell_throughput;
  std::vector<graph::NodeId> shell_ids;
  bool deadlocked = false;         ///< no progress at all in the period
  bool has_starved_shell = false;  ///< some shell never fires

  Rational system_throughput() const {
    if (shell_throughput.empty()) return Rational(0);
    Rational best(1);
    for (const auto& t : shell_throughput) {
      if (t < best) best = t;
    }
    return best;
  }
  /// Node ids of shells that never fire in the steady state.
  std::vector<graph::NodeId> starved_shells() const;
};

/// Control-plane-only simulator of a latency-insensitive design.
class Skeleton {
 public:
  explicit Skeleton(const graph::Topology& topo, SkeletonOptions opts = {});

  /// Gives sink `node` a cyclic stop pattern (true = stop); default is a
  /// greedy never-stopping consumer.  Patterns make the environment
  /// periodic with period = lcm of pattern lengths; pass that period to
  /// analyze().
  void set_sink_pattern(graph::NodeId node, std::vector<bool> pattern);

  /// Worst-case-occupancy fault injection: marks every relay station as
  /// holding (at least) one valid token, as if the system were observed
  /// under maximal traffic or perturbed by soft errors.  From *reset* a
  /// loop can never saturate (every directed cycle holds exactly its
  /// shells' tokens forever), which is why the paper observes that the
  /// deadlock's "injection will never occur" in well-formed runs; under
  /// this worst case, a loop whose stop path is fully combinational (all
  /// half stations) becomes a self-sustaining stop latch — the paper's
  /// "potential deadlock iff half relay stations are present in loops".
  void saturate_stations();

  /// Advances one clock cycle.
  void step();

  void run(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) step();
  }

  std::uint64_t cycle() const { return cycle_; }

  /// Firings of a process node so far.
  std::uint64_t fires(graph::NodeId process) const;

  /// Serialized protocol state (no counters), for period detection.
  std::string state_signature() const;

  /// Runs until the protocol state repeats (rho detection) and derives
  /// exact throughputs, transient, period and a deadlock verdict.
  SkeletonResult analyze(std::uint64_t max_cycles = 1u << 20,
                         std::uint64_t env_period = 1);

  /// Attaches an observability probe (liplib/probe).  Must be called
  /// before the first step() on an unbound probe; `probe` must outlive
  /// the Skeleton.  Requires the simplified shell
  /// (input_queue_depth == 0).
  void attach_probe(probe::Probe& probe);

 private:
  /// Fanout is capped at 32 branches per port (pend is a 32-bit mask);
  /// the constructor rejects wider fanout, mirroring lip::System.
  struct Port {
    std::uint32_t pend = 0;
    std::vector<std::size_t> branch;  // segment ids
    void load_all() {
      pend = branch.empty()
                 ? 0
                 : (branch.size() >= 32 ? ~0u
                                        : ((1u << branch.size()) - 1));
    }
  };
  struct Station {
    graph::RsKind kind = graph::RsKind::kFull;
    unsigned occ = 0;
    bool v0 = false, v1 = false;  // slot validity (voids under strict)
    bool stop_reg = false;
    std::size_t in_seg = 0, out_seg = 0;
  };
  struct Shell {
    graph::NodeId node = 0;
    std::vector<std::size_t> in_seg;
    std::vector<Port> out;
    std::vector<std::uint8_t> q_size;  // queued mode: FIFO occupancies
    std::uint64_t fire_count = 0;
  };
  struct Source {
    Port port;
  };
  struct Sink {
    std::size_t in_seg = 0;
    std::vector<bool> pattern;  // empty = greedy
    std::uint64_t consumed = 0;
  };

  bool strict() const {
    return opts_.policy == lip::StopPolicy::kCarloniStrict;
  }
  bool shell_can_fire(const Shell& s) const;
  void settle_stops();
  void observe_probe();

  graph::Topology topo_;
  SkeletonOptions opts_;
  probe::Probe* probe_ = nullptr;
  std::uint64_t cycle_ = 0;
  std::vector<std::uint8_t> fwd_;   // per segment: presented validity
  std::vector<std::uint8_t> stop_;  // per segment: settled stop
  std::vector<Station> stations_;
  std::vector<Shell> shells_;
  std::vector<Source> sources_;
  std::vector<Sink> sinks_;
  std::vector<std::size_t> node_index_;
};

/// Paper's deadlock screening recipe: simulate the skeleton up to the
/// transient's extinction; "either the deadlock will show, or will be
/// forever avoided".
struct ScreeningVerdict {
  bool ran_to_steady_state = false;
  bool deadlock_found = false;  ///< full deadlock or starved shells
  std::uint64_t transient = 0;
  std::uint64_t period = 0;
  std::uint64_t cycles_simulated = 0;
  Rational min_throughput{0};
  std::vector<graph::NodeId> starved;
};

/// How screen_for_deadlock initializes the design.
struct ScreeningOptions {
  SkeletonOptions skeleton;
  /// When set, screening starts from worst-case occupancy (one valid
  /// token in every relay station) instead of reset.  Reset-state
  /// screening proves the paper's observation that deadlock never injects
  /// in well-formed runs; worst-case screening exposes the latent stop
  /// latch of half stations on loops.
  bool worst_case_occupancy = false;
};

ScreeningVerdict screen_for_deadlock(const graph::Topology& topo,
                                     ScreeningOptions opts = {},
                                     std::uint64_t max_cycles = 1u << 20);

/// Paper's cure: "the cases that inject deadlocks can be cured by low
/// intrusive changes (adding/substituting few relay stations)".  This
/// upgrades half relay stations to full ones — preferring channels on
/// cycles that feed starved shells — re-screening after each
/// substitution, until the design is deadlock free or no half stations
/// remain on cycles.
struct CureResult {
  graph::Topology cured;
  bool success = false;
  std::size_t substitutions = 0;
  std::vector<graph::ChannelId> touched_channels;
};

CureResult cure_deadlocks(const graph::Topology& topo,
                          ScreeningOptions opts = {},
                          std::uint64_t max_cycles = 1u << 20);

}  // namespace liplib::skeleton
