// liplib/telemetry/watchdog.hpp
//
// Runtime deadlock/livelock watchdog + flight recorder.
//
// The paper's central hazard is silent: a half relay station inside a
// loop "creates the possibility of deadlock", and once the combinational
// stop latch closes the simulation just stops making progress — no
// crash, no error, the cycle budget drains.  A Watchdog rides the probe
// plumbing (probe::CycleObserver) over a live lip::System or
// skeleton::Skeleton run and
//
//  - keeps a bounded ring buffer of the last N cycles of settled
//    channel/shell state (the flight recorder),
//  - trips when no shell fires and no token moves for K consecutive
//    cycles while valid tokens are pending (no-progress), classifying
//    the frozen frame as stop-saturation when every pending token is
//    back-pressured (the paper's half-station stop latch),
//  - on trip produces a deterministic PostMortem bundle: trip cycle,
//    earliest no-progress cycle, final-window Perfetto trace, blame
//    histogram, netlist text and seed — enough for `lidtool replay` to
//    reproduce the identical deadlock cycle from the bundle alone.
//
// A companion KernelWatchdog guards the event kernel against
// combinational livelock (unbounded delta cycles at one time point).
//
// See docs/telemetry.md.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "liplib/probe/probe.hpp"
#include "liplib/sim/kernel.hpp"
#include "liplib/support/json.hpp"

namespace liplib::lip {
class System;
}  // namespace liplib::lip
namespace liplib::skeleton {
class Skeleton;
}  // namespace liplib::skeleton
namespace liplib::xir {
class ScalarEngine;
}  // namespace liplib::xir

namespace liplib::telemetry {

/// Why the watchdog tripped.
enum class TripReason : std::uint8_t {
  kNone = 0,
  /// Tokens pending but nothing fired or moved for K cycles (livelock /
  /// starvation that never resolves).
  kNoProgress = 1,
  /// The no-progress frame is fully back-pressured: every valid segment
  /// carries stop — the closed stop latch of half stations on a loop.
  kStopSaturation = 2,
};

const char* trip_reason_str(TripReason r);

struct WatchdogOptions {
  /// K: consecutive cycles with pending tokens but no firing and no
  /// token motion before the watchdog trips.  With a greedy environment
  /// one frozen cycle already implies deadlock; the margin absorbs
  /// periodic sink patterns and registered-stop drain transients.
  std::uint64_t no_progress_threshold = 64;
  /// N: flight-recorder depth in cycles.
  std::uint64_t ring_cycles = 256;
  /// Provenance recorded into the bundle (the seed that generated or
  /// configured the design); not interpreted by the watchdog.
  std::uint64_t seed = 0;
  /// Bundle metadata: the run started from worst-case occupancy
  /// (saturate_stations), the state in which the latent stop latch is
  /// reachable.
  bool worst_case_occupancy = false;
  /// Bundle metadata: lip::StopResolution::kOptimistic was in force.
  bool optimistic = false;
};

/// One row of the bundle's blame histogram (names only — the bundle is
/// self-contained text).
struct BlameSummary {
  std::string victim;
  std::string why;      ///< "waiting" | "stopped"
  std::string culprit;
  std::string culprit_kind;
  std::uint64_t cycles = 0;
};

/// The deterministic post-mortem bundle written on trip.  Everything
/// `lidtool replay` needs to reproduce the failure: the netlist text,
/// the protocol configuration, the seed, and the cycle indices to check
/// the reproduction against.
struct PostMortem {
  TripReason reason = TripReason::kNone;
  std::uint64_t trip_cycle = 0;
  std::uint64_t no_progress_since = 0;  ///< first cycle of the frozen run
  std::uint64_t no_progress_threshold = 0;
  std::uint64_t ring_cycles = 0;
  std::uint64_t seed = 0;
  bool strict = false;                ///< StopPolicy::kCarloniStrict
  bool optimistic = false;            ///< StopResolution::kOptimistic
  bool worst_case_occupancy = false;  ///< run started saturated
  std::string netlist;                ///< graph::write_netlist text
  std::vector<BlameSummary> blame;    ///< cycles-descending
  /// Final-window Chrome trace-event / Perfetto JSON document covering
  /// the recorded ring (probe/trace format).
  std::string trace_json;

  /// Schema "liplib.postmortem/1" (byte-stable).
  Json to_json() const;
  /// Inverse of to_json(); throws ApiError on schema mismatch.
  static PostMortem from_json(const Json& j);
};

/// Result of replaying a bundle (telemetry::replay / lidtool replay).
struct ReplayResult {
  bool tripped = false;
  std::uint64_t trip_cycle = 0;
  std::uint64_t no_progress_since = 0;
  TripReason reason = TripReason::kNone;
  /// Reproduction matched the bundle's reason + cycle indices exactly.
  bool reproduced = false;
};

/// The watchdog.  Construct, attach() to a host simulator, step the
/// host (or use run_guarded), then inspect tripped()/post_mortem().
class Watchdog final : public probe::CycleObserver {
 public:
  explicit Watchdog(WatchdogOptions opts = {});

  /// Attaches to a host via an internally-owned probe (counters +
  /// attribution on, so the bundle carries a blame histogram).  Same
  /// constraints as the host's attach_probe: before the first step,
  /// simplified shells only.
  void attach(lip::System& sys);
  void attach(skeleton::Skeleton& sk);
  void attach(xir::ScalarEngine& eng);

  /// The internally-owned probe (valid after attach); exposes report()
  /// for callers that want the measurement alongside the verdict.
  probe::Probe& probe() { return probe_; }
  const probe::Probe& probe() const { return probe_; }

  const WatchdogOptions& options() const { return opts_; }

  // ---- probe::CycleObserver --------------------------------------------
  void on_bind(const probe::Probe& p) override;
  void on_cycle(std::uint64_t cycle, const std::uint8_t* valid,
                const std::uint8_t* stop,
                const probe::Activity* activity) override;

  // ---- verdict ----------------------------------------------------------
  bool tripped() const { return reason_ != TripReason::kNone; }
  TripReason reason() const { return reason_; }
  /// Cycle index at which the watchdog tripped (the K-th frozen cycle).
  std::uint64_t trip_cycle() const { return trip_cycle_; }
  /// First cycle of the frozen run — the earliest no-progress cycle.
  std::uint64_t no_progress_since() const { return frozen_since_; }
  /// Cycles currently recorded in the flight-recorder ring.
  std::uint64_t recorded_cycles() const;

  /// Builds the post-mortem bundle.  Requires tripped(); the blame
  /// histogram is read from the owned probe, the netlist from the bound
  /// topology, the trace by replaying the ring into probe/trace.
  PostMortem post_mortem() const;

 private:
  bool frame_frozen(const std::uint8_t* valid, const std::uint8_t* stop,
                    const probe::Activity* activity, bool* saturated) const;
  std::string render_ring_trace() const;

  WatchdogOptions opts_;
  probe::Probe probe_;
  const probe::Probe* bound_ = nullptr;  ///< set by on_bind (== &probe_
                                         ///< when attach() was used)

  // Flight recorder: flat rings, slot = frame % ring_cycles.
  std::size_t segs_ = 0;
  std::size_t shells_ = 0;
  std::vector<std::uint8_t> ring_valid_;
  std::vector<std::uint8_t> ring_stop_;
  std::vector<std::uint8_t> ring_act_;
  std::vector<std::uint64_t> ring_cycle_;
  std::uint64_t frames_ = 0;  ///< total frames ever recorded

  // No-progress tracking.
  std::uint64_t frozen_run_ = 0;
  std::uint64_t frozen_since_ = 0;
  TripReason reason_ = TripReason::kNone;
  std::uint64_t trip_cycle_ = 0;
  bool trip_saturated_ = false;
};

/// Steps `sys` until the watchdog trips or `max_cycles` elapse.  The
/// satellite surface: lidtool simulate/run report a deadlock verdict
/// instead of silently exhausting the budget.
struct GuardedRun {
  std::uint64_t cycles = 0;  ///< cycles actually stepped
  bool deadlocked = false;   ///< watchdog tripped
};
GuardedRun run_guarded(lip::System& sys, Watchdog& dog,
                       std::uint64_t max_cycles);
GuardedRun run_guarded(skeleton::Skeleton& sk, Watchdog& dog,
                       std::uint64_t max_cycles);
GuardedRun run_guarded(xir::ScalarEngine& eng, Watchdog& dog,
                       std::uint64_t max_cycles);

/// Reconstructs the design from a bundle (netlist + protocol config +
/// saturation state), re-runs it under a fresh watchdog with the
/// bundle's thresholds, and checks the failure reproduces at the
/// identical cycle indices.
ReplayResult replay(const PostMortem& pm);

// ---- event-kernel watchdog ---------------------------------------------

/// Guards a sim::SimContext against combinational livelock: trips when a
/// single time point exceeds `max_deltas_per_time` delta cycles (an
/// unstable stop/valid loop never settling).
class KernelWatchdog final : public sim::KernelObserver {
 public:
  explicit KernelWatchdog(std::uint64_t max_deltas_per_time = 1024);

  void on_delta(sim::Time now, std::size_t changes,
                std::size_t wakeups) override;
  void on_time_serviced(sim::Time now, std::uint64_t deltas) override;

  bool tripped() const { return tripped_; }
  /// Time point at which the delta budget was exceeded.
  sim::Time trip_time() const { return trip_time_; }
  std::uint64_t deltas_at_trip() const { return deltas_at_trip_; }

 private:
  std::uint64_t max_deltas_;
  std::uint64_t deltas_this_time_ = 0;
  sim::Time current_time_ = 0;
  bool any_delta_ = false;
  bool tripped_ = false;
  sim::Time trip_time_ = 0;
  std::uint64_t deltas_at_trip_ = 0;
};

}  // namespace liplib::telemetry
