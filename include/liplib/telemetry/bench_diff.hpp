// liplib/telemetry/bench_diff.hpp
//
// The perf-trajectory regression gate: compares two BENCH_*.json
// artifacts (bench/bench_util.hpp, schema "liplib.bench/1") field by
// field with a noise-aware percentage threshold.
//
// Records are matched by their string-valued fields (e.g. config names),
// numeric fields are classified by name into higher-is-better
// (throughput-like: *per_s*, *speedup*, *throughput*, *rate*),
// lower-is-better (cost-like: *seconds*, *overhead*) or informational
// (sizes, counts — never gated), and a delta beyond the threshold in the
// bad direction is a regression.  `lidtool bench diff` exposes this with
// exit codes 0 (clean) / 1 (regression) / 2 (bad input), which is what
// the CI bench-smoke job runs against the previous run's artifacts.
//
// See docs/telemetry.md for the threshold model.

#pragma once

#include <string>
#include <vector>

#include "liplib/support/json.hpp"

namespace liplib::telemetry {

/// Gate direction of one numeric field.
enum class DeltaClass : std::uint8_t {
  kHigherBetter = 0,
  kLowerBetter = 1,
  kInfo = 2,  ///< reported, never gated
};

const char* delta_class_str(DeltaClass c);

/// Classifies a record field by name (see header comment).
DeltaClass classify_bench_field(std::string_view field);

/// One compared numeric field of one matched record.
struct BenchDelta {
  std::string record;  ///< record key ("config=counters", ...)
  std::string field;
  double old_value = 0;
  double new_value = 0;
  /// Signed percent change of new vs old ((new-old)/old * 100).
  double change_pct = 0;
  DeltaClass cls = DeltaClass::kInfo;
  bool regression = false;   ///< beyond threshold in the bad direction
  bool improvement = false;  ///< beyond threshold in the good direction
};

struct BenchDiffOptions {
  /// Percent change beyond which a gated field counts as a regression
  /// (or improvement).  Deltas inside the band are noise.
  double threshold_pct = 10.0;
};

/// The comparison result.
struct BenchDiff {
  std::string bench;
  double threshold_pct = 10.0;
  std::vector<BenchDelta> deltas;  ///< matched-record order, field order
  /// Structural asymmetries: records present on only one side,
  /// fields that changed type, zero baselines.  Never gate.
  std::vector<std::string> notes;

  bool has_regression() const;
  std::size_t regressions() const;
  std::size_t improvements() const;
  /// 0 = clean, 1 = regression (bad input throws before a BenchDiff
  /// exists and maps to exit 2 in lidtool).
  int exit_code() const { return has_regression() ? 1 : 0; }

  /// Human-readable report, one line per gated or noteworthy delta.
  std::string to_text() const;
  /// Schema "liplib.benchdiff/1" (byte-stable).
  Json to_json() const;
};

/// Compares two parsed "liplib.bench/1" documents.  Throws ApiError on
/// schema or bench-name mismatch.
BenchDiff bench_diff(const Json& old_doc, const Json& new_doc,
                     BenchDiffOptions opts = {});

/// Reads, parses and compares two BENCH_*.json files.  Throws ApiError
/// on unreadable files or malformed JSON.
BenchDiff bench_diff_files(const std::string& old_path,
                           const std::string& new_path,
                           BenchDiffOptions opts = {});

}  // namespace liplib::telemetry
