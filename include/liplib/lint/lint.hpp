// liplib/lint/lint.hpp
//
// The static protocol analyzer: a pass framework over graph::Topology
// that turns the paper's structural correctness results into first-class
// machine-readable diagnostics, checked *before* any simulation runs:
//
//   LIP001  dangling port             (error)    undriven input / unread output
//   LIP002  fanout beyond 32         (error)    protocol engines track pending
//                                               consumers in a 32-bit mask
//   LIP003  missing relay station    (error)    shell->shell channel with no
//                                               memory element; fix-it: insert
//                                               one half station
//   LIP004  source feeds sink        (warning)  degenerate channel
//   LIP005  half station on a cycle  (info)     the paper's coarse hazard cue,
//                                               refined by LIP006
//   LIP006  combinational stop cycle (warning / error)  a directed cycle whose
//             stop path has no registered station: a latent stop latch.
//             Classified by token conservation (paper §liveness): from reset a
//             cycle of S shells and H half-station slots holds exactly S of
//             S+H tokens, so the latch is reset-unreachable when H >= 1
//             (warning: reachable only under worst-case occupancy) and
//             reset-reachable when the cycle has no station slack at all
//             (error).  Fix-it: substitute one half station with a full one.
//   LIP007  reconvergence imbalance  (info)     predicted T = (m-i)/m < 1;
//                                               fix-it: equalization plan
//   LIP008  slowest cycle bottleneck (info)     loop bound via the exact MCR
//   LIP009  transient bound          (info)     predictable-upfront transient
//
// The dynamic screening these rules replace (skeleton::screen_for_deadlock
// under worst-case occupancy) is locked against LIP006 by the test suite
// and by campaign::make_lint_crosscheck_campaign: on randomized topologies
// the static hazard verdict must agree with the simulator exactly.

#pragma once

#include <string>
#include <vector>

#include "liplib/graph/topology.hpp"
#include "liplib/lint/diagnostic.hpp"

namespace liplib::lint {

/// Lint configuration.
struct Options {
  /// Enforce LIP003 (a shell->shell channel needs >= 1 memory element).
  /// Off for Carloni-style input-queued shells, which provide the memory
  /// element themselves (mirrors Topology::validate's parameter).
  bool require_station_between_shells = true;
  /// Run only the structural rules LIP001..LIP006 (every rule that is
  /// polynomial and has no analysis budget).  This subset backs
  /// Topology::validate().
  bool structural_only = false;
  /// Rule ids to skip entirely (e.g. {"LIP009"}).
  std::vector<std::string> disabled_rules;
  /// Budget for cycle/path enumeration in the performance rules LIP007
  /// and LIP008; when exceeded the rule degrades to an info note instead
  /// of throwing.
  std::size_t analysis_budget = 4096;
};

/// Catalog entry for one rule (docs/lint.md is generated from this).
struct RuleInfo {
  const char* id;        ///< "LIP001"
  const char* name;      ///< short kebab-case name
  Severity severity;     ///< default / maximum severity
  bool has_fixit;        ///< the rule can emit machine-applicable fix-its
  const char* summary;   ///< one-line description
  const char* citation;  ///< the paper result behind the rule
};

/// The full rule catalog in id order.
const std::vector<RuleInfo>& rule_catalog();

/// Runs every enabled pass over `topo` and returns the findings, ordered
/// by rule id, then by locus.  Deterministic.
Report run_lint(const graph::Topology& topo, const Options& options = {});

/// Applies the report's fix-its to `topo` (deduplicated; edits that no
/// longer apply — e.g. a station already substituted — are skipped).
/// Returns the number of station edits performed.
std::size_t apply_fixits(graph::Topology& topo, const Report& report);

/// Result of the lint-fix loop.
struct FixResult {
  graph::Topology fixed;   ///< the cured topology
  Report report;           ///< lint report of `fixed`
  std::size_t applied = 0; ///< total station edits across iterations
  std::size_t iterations = 0;
};

/// Iterates run_lint + apply_fixits until no fix-it applies (each
/// iteration strictly reduces the number of curable findings, so the
/// loop terminates).  The fixed-point report is returned alongside the
/// cured topology; `lidtool lint --fix` is this function.
FixResult lint_and_fix(const graph::Topology& topo,
                       const Options& options = {});

/// Converts a lint report into the legacy ValidationReport shape
/// (Topology::validate is implemented on top of this): errors map to
/// errors, everything else to warnings.
graph::ValidationReport to_validation_report(const Report& report);

}  // namespace liplib::lint
