// liplib/lint/diagnostic.hpp
//
// Structured diagnostics for the static protocol analyzer.  Every finding
// carries a stable rule id (LIP001...), a severity, an optional locus
// (node and/or channel of the topology under analysis), a human-readable
// message and zero or more machine-applicable fix-its.  A Report renders
// deterministically as text or canonical JSON (support/json.hpp), so lint
// output can be golden-tested byte-for-byte and consumed by tools.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "liplib/graph/topology.hpp"
#include "liplib/support/json.hpp"

namespace liplib::lint {

/// Diagnostic severity, ordered by badness.
enum class Severity {
  kInfo,     ///< a note (performance prediction, refined hazard status)
  kWarning,  ///< a hazard that does not invalidate the design
  kError,    ///< a protocol violation; the design cannot run
};

/// Stable lower-case name: "info", "warning", "error".
const char* severity_name(Severity s);

/// A machine-applicable topology edit curing (part of) a diagnostic.
/// Fix-its always describe station edits — the paper's cures are all
/// "adding/substituting few relay stations".
struct FixIt {
  enum class Kind {
    kInsertStation,      ///< insert `count` stations of `station` at `index`
    kSubstituteStation,  ///< replace the station at `index` with `station`
    kAppendStations,     ///< append `count` stations of `station`
  };
  Kind kind = Kind::kInsertStation;
  graph::ChannelId channel = 0;
  std::size_t index = 0;  ///< station position (insert / substitute)
  std::size_t count = 1;  ///< stations touched (insert / append)
  graph::RsKind station = graph::RsKind::kFull;
  std::string description;  ///< human-readable summary of the edit

  /// Stable lower-case kind name for JSON ("insert_station", ...).
  const char* kind_name() const;

  friend bool operator==(const FixIt& a, const FixIt& b) {
    return a.kind == b.kind && a.channel == b.channel && a.index == b.index &&
           a.count == b.count && a.station == b.station;
  }
};

/// One finding of one lint rule.
struct Diagnostic {
  std::string rule;  ///< stable id, e.g. "LIP006"
  Severity severity = Severity::kWarning;
  std::optional<graph::NodeId> node;        ///< node locus, if any
  std::optional<graph::ChannelId> channel;  ///< channel locus, if any
  std::string message;
  std::vector<FixIt> fixits;
};

/// The result of a lint run over one topology.
struct Report {
  std::vector<Diagnostic> diagnostics;

  std::size_t count(Severity s) const;
  std::size_t count_rule(const std::string& rule) const;
  bool has_rule(const std::string& rule) const {
    return count_rule(rule) > 0;
  }
  /// No errors and no warnings (info notes are fine).
  bool clean() const {
    return count(Severity::kError) == 0 && count(Severity::kWarning) == 0;
  }
  /// Highest severity present; nullopt for an empty report.
  std::optional<Severity> max_severity() const;
  /// Process exit code contract: 0 = clean (at most info), 1 = warnings,
  /// 2 = errors (lidtool lint).
  int exit_code() const;

  /// Total fix-its across all diagnostics.
  std::size_t num_fixits() const;

  /// Human-readable rendering, one "severity[RULE] message" line per
  /// diagnostic plus indented "fix-it:" lines.  `topo` resolves loci to
  /// names; must be the linted topology.
  std::string to_string(const graph::Topology& topo) const;

  /// Canonical JSON (schema "liplib-lint-v1", see docs/lint.md).
  /// Deterministic: byte-identical for equal reports.
  Json to_json(const graph::Topology& topo) const;
};

}  // namespace liplib::lint
