// liplib/sim/kernel.hpp
//
// A small event-driven simulation kernel with VHDL-style semantics:
// signals, processes with sensitivity lists, delta cycles and scheduled
// (transport-delay) assignments.  The paper validated its protocol with a
// VHDL description of all blocks run on an event-driven simulator; this
// kernel plays that role so the RTL models in liplib/rtl can be simulated
// at the same abstraction level.
//
// Semantics:
//  - Signal<T>::write(v) is a non-blocking assignment: it takes effect at
//    the next delta cycle of the current simulation time.
//  - Signal<T>::write_after(v, d) schedules the assignment d time units
//    in the future (transport delay, last write at a given time wins).
//  - A Process runs when any signal in its sensitivity list changes value,
//    and once at elaboration (time 0, before any delta), like a VHDL
//    process executing up to its first wait.
//  - Time only advances when no delta activity is pending.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "liplib/support/check.hpp"

namespace liplib::sim {

class SimContext;

/// Simulation timestamp in abstract time units (the RTL models use one
/// unit per clock phase).
using Time = std::uint64_t;

/// Observer of kernel activity.  A SimContext with no observer pays one
/// null-pointer test per delta cycle; liplib/probe's KernelProbe hooks in
/// here to count delta cycles, wakeups and signal changes (and optionally
/// stream them into a trace) without the kernel knowing about it.
class KernelObserver {
 public:
  virtual ~KernelObserver() = default;
  /// One delta cycle executed at time `now`: `changes` signals changed
  /// value, waking `wakeups` processes.
  virtual void on_delta(Time now, std::size_t changes,
                        std::size_t wakeups) = 0;
  /// A discrete time point finished settling after `deltas` delta cycles
  /// (only called when there was activity).
  virtual void on_time_serviced(Time now, std::uint64_t deltas) = 0;
};

/// Type-erased base of all signals; owned by a SimContext.
class SignalBase {
 public:
  SignalBase(SimContext& ctx, std::string name);
  virtual ~SignalBase() = default;

  SignalBase(const SignalBase&) = delete;
  SignalBase& operator=(const SignalBase&) = delete;

  const std::string& name() const { return name_; }

  /// True when the signal changed value in the delta cycle whose events
  /// are currently being serviced (VHDL 'event).
  bool event() const;

 protected:
  friend class SimContext;

  /// Applies the pending write, if any.  Returns true when the visible
  /// value changed.
  virtual bool apply_pending() = 0;

  void register_pending();

  SimContext& ctx_;
  std::string name_;
  std::uint64_t change_stamp_ = 0;  // delta stamp of last value change
  bool in_pending_list_ = false;
};

/// A typed signal.  Reads return the current (settled) value; writes are
/// deferred to the next delta cycle.
template <typename T>
class Signal : public SignalBase {
 public:
  Signal(SimContext& ctx, std::string name, T initial)
      : SignalBase(ctx, std::move(name)), value_(std::move(initial)) {}

  /// Current value as of the last completed delta cycle.
  const T& read() const { return value_; }

  /// Schedules `v` for the next delta cycle.  The last write in a delta
  /// wins, matching VHDL signal assignment.
  void write(T v) {
    pending_ = std::move(v);
    register_pending();
  }

  /// Schedules `v` at now + delay (transport delay).
  void write_after(T v, Time delay);

  /// 'event and new value is true — valid for bool-like signals.
  bool posedge() const { return this->event() && static_cast<bool>(value_); }

  /// 'event and new value is false.
  bool negedge() const { return this->event() && !static_cast<bool>(value_); }

 private:
  bool apply_pending() override {
    if (!pending_) return false;
    T v = std::move(*pending_);
    pending_.reset();
    if (v == value_) return false;
    value_ = std::move(v);
    return true;
  }

  T value_;
  std::optional<T> pending_;
};

/// A simulation process: a callback plus a sensitivity list.
class Process {
 public:
  Process(std::string name, std::function<void()> body)
      : name_(std::move(name)), body_(std::move(body)) {}

  const std::string& name() const { return name_; }

 private:
  friend class SimContext;
  std::string name_;
  std::function<void()> body_;
  std::vector<const SignalBase*> sensitivity_;
  std::uint64_t wake_stamp_ = 0;  // last delta stamp this process ran in
};

/// Owns signals and processes and advances simulated time.
class SimContext {
 public:
  SimContext() = default;
  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  /// Creates a signal with an initial value.  The reference stays valid
  /// for the lifetime of the context.
  template <typename T>
  Signal<T>& signal(std::string name, T initial) {
    auto s = std::make_unique<Signal<T>>(*this, std::move(name),
                                         std::move(initial));
    Signal<T>& ref = *s;
    signals_.push_back(std::move(s));
    return ref;
  }

  /// Creates a process.  `body` runs once at elaboration and then on every
  /// event of a signal it is sensitized to.
  Process& process(std::string name, std::function<void()> body);

  /// Adds `sig` to the sensitivity list of `proc`.
  void sensitize(Process& proc, const SignalBase& sig);

  /// Registers a callback invoked after `sig` settles to a new value
  /// (used for waveform tracing).
  void on_change(const SignalBase& sig, std::function<void()> hook);

  /// Runs elaboration (if not yet done) and all activity up to and
  /// including time `t_end`.
  void run_until(Time t_end);

  /// Runs elaboration plus `n` further discrete time points that have
  /// scheduled activity.  Returns the last time serviced.
  Time run_steps(std::uint64_t n);

  /// Current simulation time.
  Time now() const { return now_; }

  /// True if any future (non-delta) event is scheduled.
  bool has_future_events() const { return !calendar_.empty(); }

  /// Number of delta cycles executed so far (diagnostic).
  std::uint64_t delta_count() const { return delta_stamp_; }

  /// Aborts with InternalError when one time point needs more than this
  /// many delta cycles — catches combinational oscillation in models.
  void set_delta_limit(std::uint64_t limit) { delta_limit_ = limit; }

  /// Attaches (or detaches, with nullptr) an activity observer.  The
  /// observer must outlive the context or be detached before destruction.
  void set_observer(KernelObserver* observer) { observer_ = observer; }

 private:
  friend class SignalBase;
  template <typename T>
  friend class Signal;

  void schedule_at(Time t, std::function<void()> load_pending);
  void add_pending(SignalBase& sig) { pending_signals_.push_back(&sig); }
  void elaborate();
  void service_current_time();

  std::vector<std::unique_ptr<SignalBase>> signals_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::multimap<Time, std::function<void()>> calendar_;
  std::vector<SignalBase*> pending_signals_;
  std::multimap<const SignalBase*, Process*> sensitivity_;
  std::multimap<const SignalBase*, std::function<void()>> change_hooks_;
  KernelObserver* observer_ = nullptr;
  Time now_ = 0;
  std::uint64_t delta_stamp_ = 0;   // global, strictly increasing
  std::uint64_t service_stamp_ = 0; // stamp of delta being serviced
  std::uint64_t delta_limit_ = 100000;
  bool elaborated_ = false;
};

template <typename T>
void Signal<T>::write_after(T v, Time delay) {
  ctx_.schedule_at(ctx_.now() + delay, [this, v = std::move(v)]() {
    pending_ = v;
    register_pending();
  });
}

/// Free-running clock helper: drives a bool signal with a 50% duty cycle,
/// first rising edge at `phase` time units, then every `half_period` units.
class Clock {
 public:
  Clock(SimContext& ctx, std::string name, Time half_period, Time phase = 1);

  Signal<bool>& signal() { return clk_; }
  const Signal<bool>& signal() const { return clk_; }

 private:
  Signal<bool>& clk_;
};

}  // namespace liplib::sim
