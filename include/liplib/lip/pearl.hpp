// liplib/lip/pearl.hpp
//
// The "pearl" is the functional synchronous module that a shell wraps.
// A pearl is a deterministic Moore-style machine: every activation it
// consumes exactly one datum per input port and produces exactly one datum
// per output port (which the shell loads into its registered, initialized-
// valid output ports).  Pearls know nothing about the protocol: validity,
// back pressure and clock gating live entirely in the shell.

#pragma once

#include <cstdint>
#include <memory>
#include <span>

namespace liplib::lip {

/// Interface implemented by every functional module.
///
/// Determinism contract: two pearls that are clones of each other and
/// receive the same input sequences must produce the same output
/// sequences.  The latency-insensitive machinery relies on this to prove
/// (and test) that the wrapped system is latency equivalent to the
/// original zero-delay one.
class Pearl {
 public:
  virtual ~Pearl() = default;

  /// Number of input ports (each consumes one datum per activation).
  virtual std::size_t num_inputs() const = 0;

  /// Number of output ports (each produces one datum per activation).
  virtual std::size_t num_outputs() const = 0;

  /// The initial (reset) content of output register `port`.  The shell
  /// initializes its output ports *valid* with these values — the paper's
  /// footnote 1; in feedback loops these are the tokens that circulate.
  virtual std::uint64_t initial_output(std::size_t port) const {
    (void)port;
    return 0;
  }

  /// One activation: reads in[0..num_inputs) and writes
  /// out[0..num_outputs).  Called only when the shell fires, which is how
  /// clock gating is modelled: a stalled shell never steps its pearl.
  virtual void step(std::span<const std::uint64_t> in,
                    std::span<std::uint64_t> out) = 0;

  /// Fresh copy in the initial (reset) state.  Used by the zero-latency
  /// reference executor to re-run the same design without shells.
  virtual std::unique_ptr<Pearl> clone_reset() const = 0;
};

}  // namespace liplib::lip
