// liplib/lip/environment.hpp
//
// Environment models: how primary inputs produce tokens and how primary
// outputs exert back pressure.  Both honor the protocol's environment
// assumption — a presented valid datum is held unchanged while its stop is
// asserted — which the simulator enforces structurally.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "liplib/support/rng.hpp"

namespace liplib::lip {

/// Behaviour of a primary input.  `value(k)` is the k-th datum of the
/// (conceptually infinite) input stream; `ready(cycle)` decides whether
/// the source offers a new datum in a cycle where it is idle.  Once a
/// datum is offered, it stays offered until consumed.
struct SourceBehavior {
  std::function<std::uint64_t(std::uint64_t k)> value;
  std::function<bool(std::uint64_t cycle)> ready;

  /// Emits 0,1,2,... with no gaps — the standard test stream, which also
  /// makes in-order delivery checkable at sinks.
  static SourceBehavior counter() {
    return {[](std::uint64_t k) { return k; },
            [](std::uint64_t) { return true; }};
  }

  /// Emits `values` cyclically, no gaps.
  static SourceBehavior cyclic(std::vector<std::uint64_t> values) {
    auto vals = std::make_shared<std::vector<std::uint64_t>>(std::move(values));
    return {[vals](std::uint64_t k) { return (*vals)[k % vals->size()]; },
            [](std::uint64_t) { return true; }};
  }

  /// Counter stream but only ready with probability num/den each idle
  /// cycle (bursty input model).  Deterministic given the seed.
  static SourceBehavior sparse_counter(std::uint64_t seed, std::uint64_t num,
                                       std::uint64_t den) {
    auto rng = std::make_shared<Rng>(seed);
    return {[](std::uint64_t k) { return k; },
            [rng, num, den](std::uint64_t) { return rng->chance(num, den); }};
  }
};

/// Behaviour of a primary output: `stop(cycle)` is the back-pressure the
/// environment applies in that cycle.
struct SinkBehavior {
  std::function<bool(std::uint64_t cycle)> stop;

  /// Ideal consumer: never stops.
  static SinkBehavior greedy() {
    return {[](std::uint64_t) { return false; }};
  }

  /// Stops with probability num/den each cycle (jittery consumer).
  static SinkBehavior random_stop(std::uint64_t seed, std::uint64_t num,
                                  std::uint64_t den) {
    auto rng = std::make_shared<Rng>(seed);
    return {[rng, num, den](std::uint64_t) { return rng->chance(num, den); }};
  }

  /// Follows a scripted pattern cyclically (true = stop).
  static SinkBehavior script(std::vector<bool> pattern) {
    auto p = std::make_shared<std::vector<bool>>(std::move(pattern));
    return {[p](std::uint64_t cycle) { return (*p)[cycle % p->size()]; }};
  }

  /// Consumes one datum every `period` cycles (rate-limited consumer):
  /// stop is asserted except when cycle % period == phase.
  static SinkBehavior periodic(std::uint64_t period, std::uint64_t phase = 0) {
    return {[period, phase](std::uint64_t cycle) {
      return cycle % period != phase % period;
    }};
  }
};

}  // namespace liplib::lip
