// liplib/lip/design.hpp
//
// A Design bundles a topology with its functional content (pearls) and its
// environment (source/sink behaviours), and can instantiate any number of
// independent executions of it: latency-insensitive Systems under either
// stop policy, or the zero-latency ReferenceExecutor.  This is the
// top-level entry point of the library; see examples/quickstart.cpp.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "liplib/graph/topology.hpp"
#include "liplib/lip/environment.hpp"
#include "liplib/lip/pearl.hpp"
#include "liplib/lip/reference.hpp"
#include "liplib/lip/system.hpp"

namespace liplib::lip {

/// Topology + pearls + environment, instantiable many times.
class Design {
 public:
  explicit Design(graph::Topology topo) : topo_(std::move(topo)) {}

  const graph::Topology& topology() const { return topo_; }

  /// Assigns the functional pearl of a process node.  The stored pearl is
  /// only used as a prototype: every instantiation receives a fresh
  /// clone_reset() copy.
  void set_pearl(graph::NodeId node, std::unique_ptr<Pearl> pearl) {
    LIPLIB_EXPECT(node < topo_.nodes().size() &&
                      topo_.node(node).kind == graph::NodeKind::kProcess,
                  "set_pearl target is not a process node");
    pearls_[node] = std::move(pearl);
  }

  /// Assigns the behaviour of a source node (default: counter stream).
  void set_source(graph::NodeId node, SourceBehavior behavior) {
    sources_[node] = std::move(behavior);
  }

  /// Assigns the behaviour of a sink node (default: greedy consumer).
  void set_sink(graph::NodeId node, SinkBehavior behavior) {
    sinks_[node] = std::move(behavior);
  }

  /// Builds a latency-insensitive execution of this design.
  std::unique_ptr<System> instantiate(System::Options opts = {}) const {
    auto sys = std::make_unique<System>(topo_, opts);
    for (const auto& [node, pearl] : pearls_) {
      sys->bind_pearl(node, pearl->clone_reset());
    }
    for (const auto& [node, beh] : sources_) sys->bind_source(node, beh);
    for (const auto& [node, beh] : sinks_) sys->bind_sink(node, beh);
    sys->finalize();
    return sys;
  }

  /// Builds the zero-latency reference execution of this design.  Source
  /// gaps and sink back pressure do not exist in the reference; only the
  /// data streams matter.
  std::unique_ptr<ReferenceExecutor> instantiate_reference() const {
    auto ref = std::make_unique<ReferenceExecutor>(topo_);
    for (const auto& [node, pearl] : pearls_) {
      ref->bind_pearl(node, pearl->clone_reset());
    }
    for (const auto& [node, beh] : sources_) {
      ref->bind_source_values(node, beh.value);
    }
    return ref;
  }

 private:
  graph::Topology topo_;
  std::map<graph::NodeId, std::unique_ptr<Pearl>> pearls_;
  std::map<graph::NodeId, SourceBehavior> sources_;
  std::map<graph::NodeId, SinkBehavior> sinks_;
};

/// Result of a latency-equivalence check.
struct EquivalenceReport {
  bool ok = false;
  /// Total valid tokens compared across all sinks.
  std::uint64_t tokens_checked = 0;
  /// Human-readable mismatch description when !ok.
  std::string detail;
};

/// The paper's safety definition, checked dynamically: runs the LID for
/// `lid_cycles`, runs the reference, and verifies that every sink's valid
/// token sequence is a prefix of the reference stream on the same wire.
/// Any policy, any relay-station mix, any environment must pass.
EquivalenceReport check_latency_equivalence(const Design& design,
                                            System::Options opts,
                                            std::uint64_t lid_cycles);

}  // namespace liplib::lip
