// liplib/lip/token.hpp
//
// The basic vocabulary of the latency-insensitive protocol: tokens
// (valid data or voids) and the stop-handling policy.

#pragma once

#include <cstdint>
#include <string>

namespace liplib::lip {

/// One item travelling on a channel in one clock cycle: either a valid
/// datum or a void ("τ" in the LIP literature; `valid == false`).
struct Token {
  std::uint64_t data = 0;
  bool valid = false;

  static Token make_void() { return {0, false}; }
  static Token of(std::uint64_t d) { return {d, true}; }

  friend bool operator==(const Token&, const Token&) = default;

  /// "n" for a void (the paper's notation in Fig. 1/2), the datum otherwise.
  std::string str() const {
    return valid ? std::to_string(data) : std::string("n");
  }
};

/// How blocks treat stop signals that arrive on channels currently
/// carrying an invalid (void) datum.
enum class StopPolicy {
  /// Carloni-style reference protocol: the stop signal is back-propagated
  /// regardless of the validity of the signal it stops; voids occupy
  /// relay-station storage and are frozen by stops like real data.
  kCarloniStrict,

  /// The paper's refinement: stops arriving on invalid signals are
  /// discarded, voids never occupy storage and are squashed at stall
  /// points.  Gives higher throughput and local void/stop management.
  kCasuDiscardOnVoid,
};

inline const char* to_string(StopPolicy p) {
  return p == StopPolicy::kCarloniStrict ? "CarloniStrict"
                                         : "CasuDiscardOnVoid";
}

/// How the simulator resolves the backward stop network when it contains
/// a combinational cycle.  Half relay stations and shells propagate stops
/// combinationally; a loop containing no full relay station therefore
/// closes a combinational cycle on the stop wires — a structural latch.
/// Real hardware may settle it either way; the paper's liveness result
/// ("potential deadlocks iff half relay stations are present in loops")
/// is exactly the pessimistic settling.  Acyclic stop networks have a
/// unique fixed point, so the choice only matters for half-RS loops.
enum class StopResolution {
  /// Least fixed point: a self-supporting stop cycle resolves to
  /// no-stop; models hardware that happens to settle low.
  kOptimistic,
  /// Greatest fixed point: a self-supporting stop cycle asserts itself
  /// and the loop deadlocks; worst-case hardware.  Screening under this
  /// mode is sound for both.  This is the default.
  kPessimistic,
};

inline const char* to_string(StopResolution r) {
  return r == StopResolution::kOptimistic ? "Optimistic" : "Pessimistic";
}

}  // namespace liplib::lip
