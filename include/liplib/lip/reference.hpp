// liplib/lip/reference.hpp
//
// The zero-latency reference executor: runs the *original* synchronous
// system — the same pearls, connected directly, with relay stations
// treated as ideal zero-delay wires and every module firing every cycle.
//
// The defining property of a latency-insensitive design (the paper's
// safety definition) is that any composition of shells and relay stations
// behaves "exactly as an equally connected system without shells and
// non-pipelined connections": the sequence of *valid* data observed on any
// LID channel must equal the sequence of data the reference system
// produces on the corresponding wire.  This executor produces those golden
// streams.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "liplib/graph/topology.hpp"
#include "liplib/lip/pearl.hpp"
#include "liplib/support/check.hpp"

namespace liplib::lip {

/// Executes the ideal (zero-delay interconnect) version of a topology.
class ReferenceExecutor {
 public:
  explicit ReferenceExecutor(const graph::Topology& topo);

  /// Binds a fresh pearl for a process node (must be in its reset state).
  void bind_pearl(graph::NodeId node, std::unique_ptr<Pearl> pearl);

  /// Binds the data stream of a source: value(k) is the k-th datum.
  /// In the reference run the source produces one datum per cycle.
  void bind_source_values(graph::NodeId node,
                          std::function<std::uint64_t(std::uint64_t)> value);

  /// Runs `cycles` cycles.  Every cycle each sink records the datum on
  /// its input wire and then every pearl fires simultaneously.
  void run(std::uint64_t cycles);

  /// Golden stream observed by a sink so far (one datum per cycle run).
  const std::vector<std::uint64_t>& sink_stream(graph::NodeId sink) const;

  std::uint64_t cycle() const { return cycle_; }

 private:
  struct Proc {
    graph::NodeId node = 0;
    std::unique_ptr<Pearl> pearl;
    std::vector<std::uint64_t> regs;      // current output registers
    std::vector<std::uint64_t> next_regs;
    std::vector<std::uint64_t> in_scratch;
  };
  struct Src {
    graph::NodeId node = 0;
    std::function<std::uint64_t(std::uint64_t)> value;
  };
  struct Snk {
    graph::NodeId node = 0;
    std::vector<std::uint64_t> stream;
  };

  std::uint64_t wire_value(const graph::OutRef& from) const;

  graph::Topology topo_;
  std::vector<Proc> procs_;
  std::vector<Src> srcs_;
  std::vector<Snk> snks_;
  std::vector<std::size_t> node_index_;
  std::uint64_t cycle_ = 0;
  bool checked_ = false;
};

}  // namespace liplib::lip
