// liplib/lip/evolution.hpp
//
// Cycle-by-cycle evolution rendering — the textual equivalent of the
// paper's Fig. 1 ("FeedForward Topology Evolution") and Fig. 2
// ("FeedBack Topology Evolution").  Each row is one clock cycle; columns
// show, for every shell, the token it presents and its activity
// (fired / waiting for data / stopped), and for every relay station the
// token it presents, with '!' marking asserted stop signals (the figures'
// dashed arrows) and 'n' marking voids, matching the paper's notation.

#pragma once

#include <cstdint>
#include <string>

#include "liplib/lip/system.hpp"
#include "liplib/support/table.hpp"

namespace liplib::lip {

/// Steps `sys` for `cycles` cycles, recording one table row per cycle.
/// Cell notation:
///   shells / sources:  "<token>"   plus '*' fired, '.' waiting input,
///                                  '!' stopped by back pressure
///   relay stations:    "<token>"   the token presented downstream,
///                                  '!' when the station's input stop is up
///   sinks:             "<token>"   the token presented at the output
/// where <token> is the datum or 'n' for a void.
liplib::Table trace_evolution(System& sys, std::uint64_t cycles);

/// Renders trace_evolution() to a string.
std::string render_evolution(System& sys, std::uint64_t cycles);

}  // namespace liplib::lip
