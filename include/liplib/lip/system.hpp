// liplib/lip/system.hpp
//
// Cycle-accurate, full-data simulator of a latency-insensitive design.
//
// A System is instantiated from a graph::Topology: every kProcess node
// becomes a shell wrapping a user-supplied Pearl, every channel becomes a
// chain of relay stations, and sources/sinks become environment models.
//
// Timing model (one System::step() == one clock cycle):
//   1. forward phase — every producer presents (valid, data) on its
//      output segments; all forward values are register outputs, so this
//      is a single pass over the state;
//   2. backward phase — the stop network is evaluated to its least fixed
//      point: full relay stations contribute their *registered* stop,
//      while shells and half relay stations are stop-transparent
//      (combinational), exactly as in the paper;
//   3. clock edge — every block updates its registers using the settled
//      wire values (shells fire and step their pearls; gated shells hold).
//
// The StopPolicy option selects between the reference Carloni protocol
// (stops honored regardless of validity, voids occupy storage) and the
// paper's refinement (stops on invalid signals are discarded).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "liplib/graph/topology.hpp"
#include "liplib/lip/environment.hpp"
#include "liplib/lip/pearl.hpp"
#include "liplib/lip/token.hpp"
#include "liplib/support/check.hpp"

namespace liplib::probe {
class Probe;
}  // namespace liplib::probe

namespace liplib::lip {

/// Index of a wire segment inside a System (one per hop of a channel).
using SegId = std::size_t;

/// What a shell did in the last simulated cycle — the three block states
/// the paper's evolution figures draw (firing, waiting for data, stopped).
enum class ShellActivity {
  kFired,          ///< consumed inputs, stepped the pearl, loaded outputs
  kWaitingInput,   ///< some input was void (no data to consume)
  kStoppedOutput,  ///< all inputs valid but an output was back-pressured
};

/// Snapshot of one wire segment during a cycle.
struct SegmentView {
  Token fwd;         ///< forward (valid, data) presented on the segment
  bool stop = false; ///< settled backward stop on the segment
};

/// Accumulated per-segment activity counters (see System::segment_stats):
/// how often the hop carried valid data, a void, or an asserted stop —
/// the utilization picture behind the paper's throughput and locality
/// arguments (a stop on a void hop is exactly the event the protocol
/// variant discards).
struct SegmentStats {
  std::uint64_t cycles = 0;         ///< cycles observed
  std::uint64_t valid_cycles = 0;   ///< forward datum was valid
  std::uint64_t void_cycles = 0;    ///< forward datum was a void
  std::uint64_t stop_cycles = 0;    ///< backward stop asserted
  std::uint64_t stop_on_valid = 0;  ///< stop landed on a valid datum
  std::uint64_t stop_on_void = 0;   ///< stop landed on a void

  double utilization() const {
    return cycles ? static_cast<double>(valid_cycles) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
};

/// Simulation options for System.
struct SystemOptions {
  StopPolicy policy = StopPolicy::kCasuDiscardOnVoid;
  /// Settling of combinational stop cycles (only reachable with half
  /// relay stations on loops); see StopResolution.
  StopResolution resolution = StopResolution::kPessimistic;
  /// When set, every cycle the simulator checks the protocol invariant
  /// "a valid datum whose stop was asserted is re-presented unchanged
  /// next cycle" on every segment and throws ProtocolError on violation.
  bool hold_monitor = false;
  /// Shell flavour.  0 (default): the paper's *simplified* shell — no
  /// input storage, stop-transparent, and the structural rule "at least
  /// one relay station between two shells" is enforced.  k > 0: the
  /// Carloni-style baseline shell with a k-deep FIFO on every input
  /// (back pressure asserted when a queue is full); the queue is itself
  /// the memory element between shells, so station-less shell-to-shell
  /// channels are accepted.  Each firing consumes queue heads, so every
  /// shell adds one cycle of latency but tolerates jitter locally.
  std::size_t input_queue_depth = 0;
};

namespace detail {
struct VcdTap;
}  // namespace detail

/// Full-data latency-insensitive design simulator.
class System {
 public:
  using VcdTap = detail::VcdTap;
  using Options = SystemOptions;

  /// Builds the LID structure from `topo`.  `topo.validate()` must report
  /// no errors (warnings — e.g. half relay stations on cycles — are
  /// allowed; they are precisely the configurations the deadlock
  /// experiments study).
  explicit System(const graph::Topology& topo, Options opts = {});

  ~System();
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Binds the functional pearl of a kProcess node.  The pearl arity must
  /// match the node arity.  Must be called for every process node before
  /// the first step().
  void bind_pearl(graph::NodeId node, std::unique_ptr<Pearl> pearl);

  /// Binds the behaviour of a kSource node (default: counter stream).
  void bind_source(graph::NodeId node, SourceBehavior behavior);

  /// Binds the behaviour of a kSink node (default: greedy consumer).
  void bind_sink(graph::NodeId node, SinkBehavior behavior);

  /// Checks that all process nodes are bound and freezes the structure.
  /// Called implicitly by the first step().
  void finalize();

  /// Worst-case-occupancy fault injection: fills every relay station with
  /// (at least) one valid token carrying `datum`.  See
  /// skeleton::Skeleton::saturate_stations() — this is the full-data twin,
  /// used to excite the half-station stop latch that is unreachable from
  /// reset.  Injected tokens are faults: latency equivalence with the
  /// reference no longer holds afterwards.
  void saturate_stations(std::uint64_t datum = 0);

  /// Advances one clock cycle.
  void step();

  /// Advances `n` clock cycles.
  void run(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) step();
  }

  /// Number of completed clock cycles.
  std::uint64_t cycle() const { return cycle_; }

  StopPolicy policy() const { return opts_.policy; }
  const graph::Topology& topology() const { return topo_; }

  // ---- observation ------------------------------------------------------

  /// Views of the segments of channel `c`, ordered from producer to
  /// consumer: element 0 is the producer's output hop, element i+1 the
  /// hop after station i.  Valid after at least the forward/backward
  /// phases of a step, i.e. reflects the *last completed* cycle.
  std::vector<SegmentView> channel_view(graph::ChannelId c) const;

  /// Register contents of the relay stations of channel `c` (front first;
  /// a full station may hold up to two tokens).  Empty slots omitted.
  std::vector<std::vector<Token>> station_contents(graph::ChannelId c) const;

  /// The sequence of valid tokens a sink has consumed so far.
  const std::vector<Token>& sink_stream(graph::NodeId sink) const;

  /// Per-cycle log of what the sink saw (one entry per completed cycle):
  /// the presented token, void if none.  Enabled via record_sink_trace().
  const std::vector<Token>& sink_cycle_trace(graph::NodeId sink) const;

  /// Enables per-cycle sink tracing (off by default to keep runs cheap).
  void record_sink_trace(bool on) { trace_sinks_ = on; }

  /// Enables per-segment activity counters (off by default).
  void record_segment_stats(bool on) { record_stats_ = on; }

  /// Activity counters of the segments of channel `c`, producer-to-
  /// consumer order (element 0 is the producer's hop).  All zero unless
  /// record_segment_stats(true) was set before stepping.
  std::vector<SegmentStats> segment_stats(graph::ChannelId c) const;

  /// Streams the protocol-visible waveform of the whole design (every
  /// hop's valid/data/stop) as a VCD dump into `os`, one timestamp per
  /// cycle.  Must be called before the first step(); `os` must outlive
  /// the System.
  void attach_vcd(std::ostream& os);

  /// Attaches an observability probe (liplib/probe): per-cycle counters,
  /// stall attribution and optional trace export.  Must be called before
  /// the first step() on an unbound probe; `probe` must outlive the
  /// System.  Requires the paper's simplified shell
  /// (input_queue_depth == 0).  Without a probe the per-step cost is one
  /// null-pointer test.
  void attach_probe(probe::Probe& probe);

  /// Number of valid tokens consumed by a sink.
  std::uint64_t sink_count(graph::NodeId sink) const;

  /// Number of firings of a shell.
  std::uint64_t shell_fire_count(graph::NodeId shell) const;

  /// What the shell did in the last completed cycle.
  ShellActivity shell_activity(graph::NodeId shell) const;

  /// Serialized protocol state: every pend mask, station occupancy/stop
  /// register and environment presentation flag — but no data values and
  /// no monotone counters.  Two cycles with equal protocol state (and
  /// equal environment phase) evolve identically modulo data, which is
  /// what the steady-state detector exploits.
  std::string protocol_state() const;

  /// Total firings across all shells (progress measure).
  std::uint64_t total_fires() const;

  /// Sum over sinks of consumed tokens (progress measure).
  std::uint64_t total_consumed() const;

 private:
  struct Seg {
    Token fwd;
    bool stop = false;
    Token prev_fwd;
    bool prev_stop = false;
    bool has_prev = false;
    SegmentStats stats;
  };

  /// Output port shared by shells and sources: one registered token,
  /// broadcast to `branch` segments, each with a pending bit that clears
  /// when that consumer takes the datum.  The mask caps fanout at 32
  /// branches per port; the constructor rejects wider fanout (ApiError),
  /// so load() can never truncate silently.
  struct OutPort {
    Token reg;
    std::uint32_t pend = 0;  // bit b set: branch b has not yet consumed reg
    std::vector<SegId> branch;

    bool busy() const { return pend != 0; }
    void load(Token t) {
      reg = t;
      pend = branch.empty() ? 0 : (branch.size() >= 32
                                       ? ~0u
                                       : ((1u << branch.size()) - 1));
    }
  };

  struct Station {
    graph::RsKind kind = graph::RsKind::kFull;
    Token slot[2];
    unsigned occ = 0;       // tokens held (0..2 full, 0..1 half)
    bool stop_reg = false;  // full stations only
    SegId in_seg = 0;
    SegId out_seg = 0;
  };

  struct ShellState {
    graph::NodeId node = 0;
    std::unique_ptr<Pearl> pearl;
    std::vector<SegId> in_seg;        // one per input port
    std::vector<OutPort> out;         // one per output port
    /// Input FIFOs (only with input_queue_depth > 0): valid tokens only,
    /// front at index 0.
    std::vector<std::vector<std::uint64_t>> in_q;
    std::uint64_t fires = 0;
    ShellActivity activity = ShellActivity::kWaitingInput;
    std::vector<std::uint64_t> in_scratch;
    std::vector<std::uint64_t> out_scratch;
  };

  struct SourceState {
    graph::NodeId node = 0;
    SourceBehavior behavior;
    OutPort port;
    std::uint64_t emitted = 0;  // index of the next datum to offer
  };

  struct SinkState {
    graph::NodeId node = 0;
    SinkBehavior behavior;
    SegId in_seg = 0;
    bool stop_now = false;
    std::uint64_t count = 0;
    std::vector<Token> stream;
    std::vector<Token> cycle_trace;
  };

  bool strict() const { return opts_.policy == StopPolicy::kCarloniStrict; }

  void present_forward();
  void settle_stops();
  void check_hold_invariant();
  void clock_edge();

  bool shell_can_fire(const ShellState& s) const;
  void present_port(const OutPort& p);

  const ShellState& shell_of(graph::NodeId id) const;
  const SinkState& sink_of(graph::NodeId id) const;

  void collect_stats_and_vcd();
  void observe_probe();

  graph::Topology topo_;
  Options opts_;
  bool finalized_ = false;
  bool trace_sinks_ = false;
  bool record_stats_ = false;
  std::uint64_t cycle_ = 0;
  std::unique_ptr<VcdTap> vcd_;
  probe::Probe* probe_ = nullptr;

  std::vector<Seg> segs_;
  std::vector<Station> stations_;
  std::vector<ShellState> shells_;
  std::vector<SourceState> sources_;
  std::vector<SinkState> sinks_;

  // node id -> index into the kind-specific vector (or npos)
  std::vector<std::size_t> node_index_;
  // channel id -> ordered segment ids / station indices
  std::vector<std::vector<SegId>> channel_segs_;
  std::vector<std::vector<std::size_t>> channel_stations_;
};

}  // namespace liplib::lip
