// liplib/lip/steady_state.hpp
//
// Exact steady-state detection: the paper observes that after a transient
// whose length is predictable, every part of a latency-insensitive system
// behaves periodically.  This module detects that period *exactly* by
// hashing the protocol state (validity/occupancy/stop registers — no data,
// no counters) each cycle and waiting for a repeat.  From the repeat it
// derives exact rational throughputs, the transient length, the period and
// a deadlock verdict.

#pragma once

#include <cstdint>
#include <vector>

#include "liplib/graph/topology.hpp"
#include "liplib/lip/system.hpp"
#include "liplib/support/rational.hpp"

namespace liplib::lip {

/// Result of steady-state detection.
struct SteadyState {
  /// False when no repeat occurred within the cycle budget.
  bool found = false;

  /// First cycle of the periodic regime (the transient's length).
  std::uint64_t transient = 0;

  /// Length of the steady-state period in cycles.
  std::uint64_t period = 0;

  /// Exact tokens-per-cycle consumed by each sink in the steady state,
  /// in topology node-id order of the sinks.
  std::vector<Rational> sink_throughput;

  /// Exact firings-per-cycle of each shell, in topology node-id order of
  /// the process nodes.
  std::vector<Rational> shell_throughput;

  /// True when the steady state makes no progress at all: no shell fires
  /// and no sink consumes during the period.  This is the paper's
  /// deadlock ("its injection will never occur [after the transient]" —
  /// so a progress-free period is a proof of deadlock, and a progressing
  /// period is a proof of deadlock freedom).
  bool deadlocked = false;

  /// True when at least one shell never fires in the steady state
  /// (partial starvation: some subsystem is dead even if others run).
  bool has_starved_shell = false;

  /// Minimum shell throughput (the system throughput the paper quotes).
  Rational system_throughput() const {
    Rational best(1);
    for (const auto& t : shell_throughput) {
      if (t < best) best = t;
    }
    return shell_throughput.empty() ? Rational(0) : best;
  }
};

/// Runs `sys` until its protocol state (combined with the environment
/// phase, `env_period`) repeats, or `max_cycles` elapse.  The environments
/// bound to the system must be periodic with period dividing `env_period`
/// for the detection to be sound (greedy/counter environments have period
/// 1).  The system is left at the cycle where the repeat was detected.
SteadyState measure_steady_state(System& sys,
                                 std::uint64_t max_cycles = 200000,
                                 std::uint64_t env_period = 1);

}  // namespace liplib::lip
