// liplib/trace/trace.hpp
//
// liplib::trace — end-to-end distributed tracing of the production ring.
//
// The probe (liplib/probe) gives one simulation exact cycle-level
// observability; this module gives the *fleet* the same property: spans
// with causal parent/child links that cross process boundaries, so a
// sharded campaign's lease → execute → merge timeline, or a serve
// tenant's cache-lookup → compute path, is one picture instead of four
// log files.
//
// Design constraints, in order:
//
//  - Determinism.  Ids are never random: a trace id derives from the
//    request's content hash (derive_trace_id), a span id from the trace
//    id plus two caller-chosen salts (derive_span_id) — typically a
//    parent span id and a per-process monotonic sequence number, or a
//    job index for spans whose identity is positional (campaign
//    chunks).  With an injected clock the full span document is
//    byte-stable across thread counts, which is what
//    tests/trace_test.cpp locks.
//  - Wire neutrality.  A TraceContext is two ids.  It rides as an
//    optional "trace" envelope member of liplib.rpc/1 requests and
//    liplib.dist/1 lease/result messages; a peer that does not know the
//    field ignores it.
//  - One timeline.  Span documents ("liplib.trace/1") merge and export
//    into the same Chrome trace-event / Perfetto JSON the probe emits
//    (probe::TraceSink), so `lidtool trace` folds kernel-level and
//    fleet-level views into a single viewer file.
//
// The clock is injectable (like the ResultCache TTL clock) so tests
// freeze time; production uses the steady clock in microseconds.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "liplib/support/json.hpp"

namespace liplib::probe {
class TraceSink;  // probe/trace.hpp — the Chrome trace-event sink
}

namespace liplib::trace {

/// Schema tag of a span document.
inline constexpr const char* kTraceSchema = "liplib.trace/1";

/// Derives a non-zero trace id from a request content hash.  Pure and
/// platform-stable (FNV-1a over the hash bytes), so the same request
/// always opens the same trace — the byte-stability anchor.
std::uint64_t derive_trace_id(std::uint64_t content_hash);

/// Derives a non-zero span id from the trace id and two salts.  Callers
/// pick salts that make the id unique *and* deterministic: (parent span
/// id, per-process sequence) for request-shaped spans, (parent span id,
/// job index) for positional spans like campaign chunks.
std::uint64_t derive_span_id(std::uint64_t trace_id, std::uint64_t salt_a,
                             std::uint64_t salt_b);

/// The causality capsule that crosses a process boundary: which trace
/// the work belongs to and which span caused it.  Zero trace_id means
/// "no tracing requested".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  bool enabled() const { return trace_id != 0; }

  /// {"trace_id": "<hex16>", "parent_span": "<hex16>"}.
  Json to_json() const;

  /// Strict inverse of to_json (throws ApiError on malformed hex).
  static TraceContext from_json(const Json& doc);

  /// Reads the optional "trace" member of a message envelope; a missing
  /// or null member yields a disabled (all-zero) context.
  static TraceContext from_envelope(const Json& envelope);
};

/// A point event inside a span (cache hit/miss, eviction, re-dispatch,
/// duplicate drop, ...).
struct SpanEvent {
  std::string name;
  std::uint64_t ts_us = 0;
};

/// One completed span.  `track` is the display rail the span renders on
/// ("serve", "coordinator", "worker", "campaign", ...) — it becomes a
/// Perfetto process on export.  Attrs are free-form string pairs.
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;  ///< 0 = root
  std::string name;
  std::string category;
  std::string track;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::vector<SpanEvent> events;
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Thread-safe span accumulator with an injectable microsecond clock
/// and the per-process monotonic sequence the deterministic span ids
/// are built from.
class Recorder {
 public:
  /// `now_us` supplies span timestamps; the default is the process
  /// steady clock.  Tests inject a frozen clock for byte-stable output.
  explicit Recorder(std::function<std::uint64_t()> now_us = {});

  std::uint64_t now_us() const { return now_us_(); }

  /// Next value of the per-process monotonic sequence (starts at 0).
  std::uint64_t next_seq() { return seq_.fetch_add(1); }

  void record(Span span);

  /// Number of spans recorded so far.
  std::size_t size() const;

  /// Copy of every span recorded so far, in record order.
  std::vector<Span> snapshot() const;

  /// snapshot() rendered as a "liplib.trace/1" document (spans in the
  /// canonical sort of spans_to_json).
  Json to_json() const;

  /// Drops every recorded span (the sequence keeps counting).
  void clear();

 private:
  std::function<std::uint64_t()> now_us_;
  std::atomic<std::uint64_t> seq_{0};
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

/// Renders spans as a "liplib.trace/1" document.  Spans are sorted by
/// (trace_id, ts_us, span_id) — a canonical order independent of which
/// thread recorded what first, so two recorders that saw the same spans
/// serialize byte-identically.
Json spans_to_json(std::vector<Span> spans);

/// Strict inverse of spans_to_json; throws ApiError on a malformed or
/// mis-tagged document.
std::vector<Span> spans_from_json(const Json& doc);

/// Concatenates the spans of several documents (each "liplib.trace/1")
/// into one canonical document — the `lidtool trace` merge primitive.
Json merge_trace_docs(const std::vector<Json>& docs);

/// Referential integrity: every span's parent_span is either 0 or the
/// span_id of some span *in the same trace*, and span ids are unique
/// within a trace.  Returns true when the forest is sound; otherwise
/// fills `error` (when non-null) with the first violation.
bool check_integrity(const std::vector<Span>& spans, std::string* error);

/// Exports spans into an open Chrome trace-event sink (the same format
/// the probe emits, so kernel and fleet views merge into one file).
/// Each distinct track label becomes one Perfetto process, pids
/// assigned by sorted track order starting at `pid_base`; span events
/// render as instant events on the span's rail.  The caller finishes
/// the sink.
void export_perfetto(const std::vector<Span>& spans, probe::TraceSink& sink,
                     std::uint64_t pid_base = 1000);

}  // namespace liplib::trace
