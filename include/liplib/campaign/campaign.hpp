// liplib/campaign/campaign.hpp
//
// The campaign engine: a work-stealing thread pool that runs large
// batches of independent simulation jobs — deadlock screens, steady-state
// analyses, full-data spot checks, randomized topology fuzzing — and
// collects structured per-job results.
//
// The paper's premise makes this the natural scaling axis: one skeleton
// run is "absolutely negligible", so the interesting unit of work is a
// *fleet* of runs (sweeps over station counts and policies, thousand-case
// fuzz passes, screening whole design families).  The engine provides:
//
//  - determinism: job `i` of a campaign with base seed `s` always sees
//    the same random stream (SplitMix64 of (s, i)), no matter how many
//    worker threads execute the batch or in which order jobs are stolen.
//    Results are reported in job-index order, so the aggregate of a
//    campaign is byte-identical at any thread count.
//  - bounded failure: every job runs under a cycle budget.  A deadlocked
//    or non-converging simulation degrades to a recorded
//    `kBudgetExhausted` verdict instead of hanging the batch; a job that
//    throws degrades to `kError` carrying the exception text.  The pool
//    itself never stalls on a bad job.
//  - work stealing: each worker owns a deque seeded with a contiguous
//    slice of the batch; an idle worker steals from the back of the
//    busiest victim, so skewed job costs (one topology that takes its
//    whole budget amid thousands of trivial ones) still load-balance.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "liplib/support/rational.hpp"
#include "liplib/trace/trace.hpp"

namespace liplib::campaign {

/// Verdict of one campaign job.
enum class Outcome {
  kLive,             ///< ran to steady state, made progress
  kDeadlock,         ///< full deadlock detected
  kStarvation,       ///< steady state reached but some shell never fires
  kBudgetExhausted,  ///< no verdict within the job's cycle budget
  kMismatch,         ///< simulation disagreed with an analytic prediction
  kError,            ///< the job threw; detail carries the message
};

/// Stable lower-case name of an outcome ("live", "deadlock", ...), used
/// in JSON/CSV exports.
const char* outcome_name(Outcome o);

/// Inverse of outcome_name: fills `out` and returns true for a known
/// stable name, returns false otherwise.  Used when partial-aggregate
/// JSON files are read back for the distributed merge.
bool parse_outcome(const std::string& name, Outcome* out);

/// Per-job deterministic seed: SplitMix64 mix of the campaign base seed
/// and the job index.  This is the *only* source of randomness a job may
/// use (via JobContext::seed / the Rng constructed from it), which is
/// what makes campaigns reproducible at any thread count.
std::uint64_t job_seed(std::uint64_t base_seed, std::uint64_t index);

/// Execution context handed to a job function.
struct JobContext {
  std::size_t index = 0;        ///< job index within the campaign
  std::uint64_t seed = 0;       ///< job_seed(base_seed, index)
  std::uint64_t cycle_budget = 0;  ///< max simulation cycles per verdict
  /// The campaign's base seed.  Jobs that cover a *range* of logical
  /// work items (e.g. a sliced screen batching 64 variants into one
  /// evaluation) re-derive each item's stream as job_seed(base_seed,
  /// item) so the item streams are identical at any batching factor.
  std::uint64_t base_seed = 0;
};

/// Structured result of one job.  `seed` always carries the reproducing
/// per-job seed so any failure can be replayed in isolation.
struct JobResult {
  std::size_t index = 0;
  std::string name;             ///< copied from the Job
  std::uint64_t seed = 0;
  Outcome outcome = Outcome::kError;
  std::uint64_t cycles = 0;     ///< simulation cycles actually spent
  bool has_throughput = false;  ///< throughput/transient/period are set
  Rational throughput{0};       ///< exact system throughput (when live)
  std::uint64_t transient = 0;
  std::uint64_t period = 0;
  std::string detail;           ///< human-readable failure context
  /// Stall blame folded by culprit name (probe-instrumented jobs only):
  /// cycles each culprit cost some victim over the measurement window,
  /// sorted by cycles descending then name.  Feeds the fleet-level
  /// blame-by-culprit distribution (report.hpp).
  std::vector<std::pair<std::string, std::uint64_t>> blame;
};

/// A campaign job: a name (for reports) plus the function to run.  The
/// function must derive all randomness from the context and must respect
/// `cycle_budget` (every liplib analysis entry point takes a max-cycles
/// argument, so this is a matter of passing it through).
struct Job {
  std::string name;
  std::function<JobResult(const JobContext&)> fn;
};

/// Engine configuration.
struct EngineOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Campaign base seed; combined with each job index via job_seed().
  std::uint64_t base_seed = 1;
  /// Cycle budget handed to every job through its context.
  std::uint64_t cycle_budget = 1u << 20;
  /// Global index of the first job in this run.  A sharded campaign
  /// (liplib/dist) hands each shard the contiguous slice [lo, hi) of
  /// the full job vector and sets index_base = lo, so job `i` of the
  /// slice sees the same (index, seed) context it would in the
  /// unsharded run — the whole determinism argument of the distributed
  /// merge reduces to this one line.
  std::size_t index_base = 0;
  /// Jobs per work unit in the submit path.  Small jobs (a ~30 µs
  /// skeleton screen) lose everything to per-job deque traffic, so the
  /// pool hands out fixed-size chunks of consecutive indices instead of
  /// single jobs; stealing moves whole chunks.  0 = auto: the batch is
  /// split so every worker starts with ~8 chunks (at least 1, at most
  /// 64 jobs per chunk).  Determinism is unaffected — results are
  /// written by job index regardless of which worker runs a chunk.
  std::size_t chunk_size = 0;
  /// When non-null (and `trace_parent` is enabled), the run records one
  /// "campaign.chunk" span per executed chunk into this recorder.  Under
  /// tracing the auto chunk size switches to a thread-independent split
  /// (min(64, max(1, n/32)) over the *global* index range), and span ids
  /// are keyed by the chunk's first global job index — so the recorded
  /// span set is byte-identical at any worker-thread count.
  trace::Recorder* recorder = nullptr;
  /// Trace identity the chunk spans attach to: trace_parent.trace_id is
  /// the campaign's trace, trace_parent.parent_span the enclosing
  /// execute span.  Disabled (all-zero) = no spans even if a recorder is
  /// set.
  trace::TraceContext trace_parent;
};

/// Execution statistics of one Engine::run (for benchmarking and for
/// observing the load balance; never part of deterministic aggregates).
struct RunStats {
  double wall_seconds = 0;
  unsigned threads = 0;
  /// Jobs executed by each worker (sums to the batch size).
  std::vector<std::size_t> jobs_per_worker;
  /// Successful steals (jobs a worker took from another's deque).
  std::size_t steals = 0;
};

/// Work-stealing batch executor.  Stateless between runs; safe to reuse.
class Engine {
 public:
  explicit Engine(EngineOptions opts = {});

  /// Runs every job and returns results in job-index order.  Jobs are
  /// independent; a throwing job is recorded as kError and never affects
  /// its neighbours.  When `stats` is non-null it receives the run's
  /// execution statistics.
  std::vector<JobResult> run(const std::vector<Job>& jobs,
                             RunStats* stats = nullptr) const;

  const EngineOptions& options() const { return opts_; }

 private:
  EngineOptions opts_;
};

}  // namespace liplib::campaign
