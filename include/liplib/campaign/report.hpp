// liplib/campaign/report.hpp
//
// Result aggregation for campaigns: outcome histograms, exact-rational
// throughput distributions, per-job failure records carrying the
// reproducing seed — and deterministic JSON/CSV export.  Aggregates are
// computed from the job-index-ordered result vector only, so a campaign's
// exported report is byte-identical at any worker-thread count (the
// campaign determinism test locks this).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "liplib/campaign/campaign.hpp"
#include "liplib/support/json.hpp"
#include "liplib/support/rational.hpp"

namespace liplib::campaign {

/// Aggregated view of a finished campaign.
struct Aggregate {
  std::size_t total = 0;
  std::uint64_t total_cycles = 0;

  /// Jobs per outcome, in Outcome enum order (zero-count outcomes kept,
  /// so the histogram shape is schema-stable).
  std::vector<std::pair<Outcome, std::size_t>> outcomes;

  /// Exact throughput distribution over jobs that reported one, sorted
  /// ascending by value.
  std::vector<std::pair<Rational, std::size_t>> throughputs;

  /// Every non-live job result, in job-index order, with its reproducing
  /// seed (the campaign's failure record).
  std::vector<JobResult> failures;

  std::size_t count(Outcome o) const;
  bool all_live() const { return failures.empty(); }
  Rational min_throughput() const;  ///< 0 when no job reported one
  Rational max_throughput() const;  ///< 0 when no job reported one
};

/// Folds a result vector (as returned by Engine::run, job-index order)
/// into an Aggregate.
Aggregate aggregate(const std::vector<JobResult>& results);

/// JSON document of an aggregate (schema in docs/campaign.md).  Contains
/// only deterministic fields — no wall-clock times, no thread counts.
Json to_json(const Aggregate& agg);

/// Per-job CSV: header row plus one line per result, in job-index order.
/// Columns: index,name,seed,outcome,cycles,throughput,transient,period,
/// detail (detail quoted).
std::string to_csv(const std::vector<JobResult>& results);

}  // namespace liplib::campaign
