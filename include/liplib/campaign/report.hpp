// liplib/campaign/report.hpp
//
// Result aggregation for campaigns: outcome histograms, exact-rational
// throughput distributions, per-job failure records carrying the
// reproducing seed — and deterministic JSON/CSV export.  Aggregates are
// computed from the job-index-ordered result vector only, so a campaign's
// exported report is byte-identical at any worker-thread count (the
// campaign determinism test locks this).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "liplib/campaign/campaign.hpp"
#include "liplib/support/json.hpp"
#include "liplib/support/metrics.hpp"
#include "liplib/support/rational.hpp"

namespace liplib::campaign {

/// Fleet-level distributions folded from every job of a campaign — the
/// cross-run deliverable (a single probe window is a sample; the fleet
/// percentiles are the measurement).  All values are computed from the
/// job-index-ordered result vector, so they are byte-identical at any
/// worker-thread count.
struct FleetMetrics {
  /// Exact nearest-rank percentiles over the sorted multiset of per-job
  /// system throughputs, as ("p0", value) ... ("p100", value) in
  /// ascending-percentile order.  Empty when no job reported one.
  std::vector<std::pair<std::string, Rational>> throughput_percentiles;
  /// Log2-bucketed distributions over jobs that reported a steady state.
  metrics::LogHistogram transient;
  metrics::LogHistogram period;
  /// Simulation cycles spent, over every job.
  metrics::LogHistogram cycles;
  /// Stalled cycles per culprit, summed across every job's blame rows,
  /// sorted by cycles descending then culprit name.
  std::vector<std::pair<std::string, std::uint64_t>> blame_by_culprit;
};

/// Aggregated view of a finished campaign.
struct Aggregate {
  std::size_t total = 0;
  std::uint64_t total_cycles = 0;

  /// Jobs per outcome, in Outcome enum order (zero-count outcomes kept,
  /// so the histogram shape is schema-stable).
  std::vector<std::pair<Outcome, std::size_t>> outcomes;

  /// Exact throughput distribution over jobs that reported one, sorted
  /// ascending by value.
  std::vector<std::pair<Rational, std::size_t>> throughputs;

  /// Every non-live job result, in job-index order, with its reproducing
  /// seed (the campaign's failure record).
  std::vector<JobResult> failures;

  /// Fleet-level percentile/histogram view of the same results.
  FleetMetrics fleet;

  std::size_t count(Outcome o) const;
  bool all_live() const { return failures.empty(); }
  /// Extremes of the throughput distribution; nullopt when no job
  /// reported a throughput (distinguishable from a real zero-throughput
  /// deadlock, which reports Rational(0)).
  std::optional<Rational> min_throughput() const;
  std::optional<Rational> max_throughput() const;
};

/// Folds a result vector (as returned by Engine::run, job-index order)
/// into an Aggregate.  Implemented as a merge() fold over contiguous
/// blocks, so the single-process aggregate and a sharded merge run the
/// exact same combining code and cannot drift.
Aggregate aggregate(const std::vector<JobResult>& results);

/// The pure combining fold behind every aggregate in the repo: merges
/// two aggregates over *disjoint* job-index sets into the aggregate of
/// their union.  Associative, commutative up to failure ordering
/// (failures are merged by job index), with aggregate({}) as the
/// identity — so any tree of merges over any partition of a result
/// vector is byte-identical to aggregate() of the whole vector (the
/// distributed campaign's determinism guarantee; locked by the
/// associativity/identity unit test).  Derived views (fleet
/// percentiles, min/max) are recomputed from the merged exact
/// distributions, never averaged.
Aggregate merge(const Aggregate& a, const Aggregate& b);

/// Reads a "liplib.campaign.aggregate/2" document (as produced by
/// to_json) back into an Aggregate.  Lossless for every to_json-visible
/// field: to_json(aggregate_from_json(to_json(a))) is byte-identical to
/// to_json(a), which is what lets partial-aggregate JSON files merge
/// into the same bytes a single-process run would have written.
/// Fields to_json does not export (per-failure blame rows, throughput
/// flags) are not reconstructed; they are already folded into the
/// fleet distributions.  Throws ApiError on malformed documents.
Aggregate aggregate_from_json(const Json& doc);

/// JSON document of an aggregate (schema in docs/campaign.md).  Contains
/// only deterministic fields — no wall-clock times, no thread counts.
Json to_json(const Aggregate& agg);

/// Per-job CSV: header row plus one line per result, in job-index order.
/// Columns: index,name,seed,outcome,cycles,throughput,transient,period,
/// detail,top_blame (detail and top_blame quoted; top_blame is the
/// job's blame rows as "culprit:cycles" joined with ';').
std::string to_csv(const std::vector<JobResult>& results);

/// Fleet-metric CSV: header "metric,value" plus one row per percentile,
/// histogram statistic and blame culprit, in schema order.
std::string fleet_to_csv(const Aggregate& agg);

}  // namespace liplib::campaign
