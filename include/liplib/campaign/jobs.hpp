// liplib/campaign/jobs.hpp
//
// Standard job factories for the campaign engine: the workloads every
// experiment in the repo hand-rolled as serial loops, packaged as
// self-contained campaign jobs.
//
//  - screening jobs: skeleton deadlock screening from reset or from
//    worst-case occupancy (saturate_stations);
//  - steady-state jobs: skeleton periodicity detection with exact
//    throughputs;
//  - spot-check jobs: full-data lip::System steady state plus latency
//    equivalence against the zero-latency reference (default pearls);
//  - fuzz jobs: generate a random topology from the job's deterministic
//    seed (graph::generators + support::Rng), screen it and cross-check
//    the measured throughput against the analytic bounds — the
//    EXPERIMENTS.md §T1 offline fuzz pass as a reusable unit.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "liplib/campaign/campaign.hpp"
#include "liplib/graph/topology.hpp"
#include "liplib/lint/lint.hpp"
#include "liplib/lip/token.hpp"
#include "liplib/prove/prove.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "liplib/xir/xir.hpp"

namespace liplib::campaign {

/// Skeleton deadlock screen of a fixed topology.  Outcome: kLive,
/// kDeadlock (full deadlock), kStarvation (starved shells), or
/// kBudgetExhausted when no steady state shows within the cycle budget.
/// `engine` selects the evaluator (xir engines produce bit-identical
/// verdicts; kSliced here runs the single scenario in one lane — batched
/// slicing is make_mix_screen_campaign).
Job make_screening_job(std::string name, graph::Topology topo,
                       skeleton::ScreeningOptions opts = {},
                       xir::EngineMode engine = xir::EngineMode::kInterp);

/// Skeleton steady-state analysis of a fixed topology: exact throughput,
/// transient and period.  Outcomes as for screening.
Job make_steady_state_job(std::string name, graph::Topology topo,
                          skeleton::SkeletonOptions opts = {},
                          xir::EngineMode engine = xir::EngineMode::kInterp);

/// Full-data spot check of a fixed topology: binds default pearls,
/// measures the steady state on a lip::System and checks latency
/// equivalence against the reference over the budget (capped).  Outcome
/// kMismatch when equivalence breaks — the protocol safety net for
/// campaigns whose bulk runs on skeletons.
Job make_spot_check_job(std::string name, graph::Topology topo,
                        lip::StopPolicy policy =
                            lip::StopPolicy::kCasuDiscardOnVoid);

/// What a fuzz job generates and checks.
struct FuzzSpec {
  enum class Shape {
    /// make_reconvergent with randomized parameters and a randomized
    /// half/full station mix; measured skeleton throughput is checked
    /// against the exact implicit-loop bound (equality under the variant
    /// policy, upper bound under strict).
    kReconvergent,
    /// make_random_composite (the paper's "most general topology");
    /// checked live-from-reset, measured throughput against
    /// min(loop bound, implicit-loop bound), and latency equivalence on
    /// the full-data system.
    kComposite,
    /// make_random_feedforward; checked live and latency-equivalent.
    kFeedforward,
  };
  Shape shape = Shape::kComposite;
  lip::StopPolicy policy = lip::StopPolicy::kCasuDiscardOnVoid;
  /// Size knob: composite segments / feedforward processes; reconvergent
  /// parameters are drawn from the job's rng within this bound.
  std::size_t size = 3;
  /// Also run the full-data latency-equivalence check (slower; the
  /// skeleton checks alone are nearly free).
  bool check_equivalence = true;
  /// Evaluator for the skeleton analysis part of the job (the analytic
  /// cross-checks and the full-data equivalence run are engine-blind).
  xir::EngineMode engine = xir::EngineMode::kInterp;
};

/// Randomized-topology fuzz job.  The topology is generated from the
/// job's deterministic rng, so a recorded failure replays from
/// (campaign seed, job index) alone.
Job make_fuzz_job(std::string name, FuzzSpec spec);

/// Static lint of a fixed topology — mass-linting a corpus of netlists
/// is a campaign of these.  Outcome: kLive when the report is clean
/// (no errors, no warnings), kDeadlock when LIP006 found a stop latch,
/// kError for any other error/warning; detail carries the first
/// offending diagnostics.  Purely static: r.cycles stays 0.
Job make_lint_job(std::string name, graph::Topology topo,
                  lint::Options options = {});

/// What a lint cross-check job generates and verifies.
struct LintCrossCheckSpec {
  /// Upper bound on make_random_composite segments (drawn per job).
  std::size_t max_segments = 4;
  /// Also require that lint_and_fix's output re-lints clean and screens
  /// live under worst-case occupancy whenever a hazard was found.
  bool check_fix = true;
};

/// The linter-vs-simulator agreement check as a job: generates a random
/// composite topology from the job's deterministic seed (half stations
/// allowed on loops for half the jobs, so both verdicts are exercised),
/// and demands that the static LIP006 verdict equal the dynamic
/// worst-case screening verdict exactly — kMismatch on any disagreement,
/// kLive otherwise.  With `check_fix`, hazardous topologies are also
/// cured via lint_and_fix and the cure is re-screened.
Job make_lint_crosscheck_job(std::string name, LintCrossCheckSpec spec = {});

/// `n` cross-check jobs (the keystone campaign; lidtool `campaign lint`).
std::vector<Job> make_lint_crosscheck_campaign(std::size_t n,
                                               LintCrossCheckSpec spec = {});

/// Static proof of a fixed topology via liplib::prove — mass-proving a
/// corpus of netlists is a campaign of these.  Outcome: kLive when the
/// prover returns kProved, kDeadlock on a counterexample (detail carries
/// the trace depth and the culprit loop), kBudgetExhausted when the
/// verdict is kUnknown (detail carries the prover's note).  Purely
/// static: `cycles` reports the search depth reached, not simulation
/// cycles.
Job make_prove_job(std::string name, graph::Topology topo,
                   prove::ProveOptions opts = {});

/// What a prove cross-check job generates and verifies.
struct ProveCrossCheckSpec {
  /// Upper bound on make_random_composite segments (drawn per job).
  std::size_t max_segments = 4;
  /// ProveOptions overrides applied on top of the per-job defaults
  /// (worst_case_occupancy is always forced on — the cross-check regime).
  prove::ProveOptions prove;
};

/// The prover-vs-linter-vs-simulator agreement check as a job: generates
/// a random composite topology from the job's deterministic seed
/// (exactly the lint cross-check recipe, so the corpora coincide) and
/// demands three-way agreement between the worst-case prove verdict,
/// the static LIP006 verdict, and the dynamic worst-case screening
/// verdict — kMismatch on any disagreement; unanimity is kLive (the
/// lint cross-check convention: the campaign tests the differential,
/// not the design; an agreed deadlock is a passing job whose detail
/// says "agreed: deadlock at depth ...").
Job make_prove_crosscheck_job(std::string name, ProveCrossCheckSpec spec = {});

/// `n` cross-check jobs (lidtool `campaign prove`).
std::vector<Job> make_prove_crosscheck_campaign(std::size_t n,
                                                ProveCrossCheckSpec spec = {});

/// Full-data probe measurement of a fixed topology (liplib/probe): the
/// skeleton is analyzed for the exact steady state, then a
/// probe-instrumented lip::System re-runs with the counting window
/// aligned to the periodic regime, and the measured per-shell
/// throughputs must equal the analytic ones exactly — kMismatch on any
/// disagreement.  On success `detail` carries the top entry of the
/// stall-attribution histogram ("victim waiting <- culprit xN").
Job make_probe_job(std::string name, graph::Topology topo,
                   lip::StopPolicy policy =
                       lip::StopPolicy::kCasuDiscardOnVoid);

/// `n` probe jobs over random composite topologies (shape and stop
/// policy drawn from each job's deterministic seed) — the mass
/// probe-vs-analytic agreement campaign behind `lidtool campaign probe`.
std::vector<Job> make_probe_campaign(std::size_t n,
                                     std::size_t max_segments = 4);

/// The EXPERIMENTS.md §T1 offline fuzz pass as a campaign: 300 random
/// reconvergences with mixed half/full chains checked under both stop
/// policies (600 jobs) plus 150 random composite topologies checked
/// against the analytic bounds and latency equivalence (150 jobs) —
/// 750 runs total.
std::vector<Job> make_t1_fuzz_campaign();

/// A mass station-kind screening sweep over one topology: `variants`
/// random half/full mixes (each ~1/3 half, drawn exactly like the T1
/// pass), all screened for deadlock.
struct MixScreenSpec {
  graph::Topology topo;
  skeleton::SkeletonOptions skeleton;
  /// Screen from worst-case occupancy (the regime where half-station
  /// mixes actually diverge; see Skeleton::saturate_stations).
  bool worst_case_occupancy = true;
  /// Number of kind-variants to screen.
  std::size_t variants = 64;
  xir::EngineMode engine = xir::EngineMode::kSliced;
};

/// Builds the sweep.  Variant `v`'s kinds are always drawn from
/// Rng(job_seed(base_seed, v)) — independent of the engine — so the
/// per-variant verdicts are bit-identical across engines.  Under
/// kInterp/kCompiled this is one job per variant; under kSliced the
/// topology is lowered once and the campaign auto-batches 64 variants
/// per job into a single bit-sliced evaluation (ceil(variants/64)
/// jobs), each job's detail carrying the per-variant outcome tally.
std::vector<Job> make_mix_screen_campaign(MixScreenSpec spec);

/// A generated campaign identified by a stable wire name — the
/// self-contained campaign families (no input netlist) that the serve
/// daemon and the distributed layer (liplib/dist) rebuild anywhere from
/// the spec alone.
struct NamedCampaignSpec {
  std::string mode = "fuzz";  ///< fuzz | lint | probe | prove
  std::size_t jobs = 0;       ///< batch size
  /// fuzz only: stop policy, topology shape, skeleton evaluator.  The
  /// other modes draw everything from each job's deterministic seed.
  lip::StopPolicy policy = lip::StopPolicy::kCasuDiscardOnVoid;
  FuzzSpec::Shape shape = FuzzSpec::Shape::kComposite;
  xir::EngineMode engine = xir::EngineMode::kInterp;
};

/// Builds the job vector of a named campaign.  A pure function of the
/// spec — job `i` of mode "fuzz" is always make_fuzz_job("fuzz/<i>",
/// ...) — so two processes handed the same spec construct identical
/// job vectors, which is what lets a campaign shard across machines by
/// job-index range alone.  Throws ApiError on an unknown mode.
std::vector<Job> make_named_campaign(const NamedCampaignSpec& spec);

/// The kind mix a variant index denotes, in the xir program's station
/// order (channel-major).  Exposed so differential tests can replay one
/// variant in isolation.
std::vector<graph::RsKind> mix_screen_variant_kinds(
    const graph::Topology& topo, std::uint64_t base_seed,
    std::uint64_t variant);

}  // namespace liplib::campaign
