// liplib/pearls/video.hpp
//
// Block-based "video codec" pearls: an integer 8-point transform,
// a quantizer and a run-length packer, each consuming and producing one
// sample per firing (block state is internal).  Together with the stream
// pearls these build the media-pipeline example (examples/video_pipeline)
// — the kind of SoC dataflow whose long interconnects motivated the
// paper.  All arithmetic is integer and deterministic, so the zero-
// latency reference executor reproduces it exactly.

#pragma once

#include <cstdint>
#include <memory>

#include "liplib/lip/pearl.hpp"

namespace liplib::pearls {

/// 1-in 1-out 8-point integer Walsh-Hadamard-style transform: buffers 8
/// samples, then emits the 8 transform coefficients over the next 8
/// firings while buffering the next block (fully pipelined at one sample
/// per firing; the first 8 outputs are zeros while the pipe fills).
std::unique_ptr<lip::Pearl> make_block_transform8(std::uint64_t initial = 0);

/// 1-in 1-out dead-zone quantizer: out = in / q (integer), q >= 1.
std::unique_ptr<lip::Pearl> make_quantizer(std::uint64_t q,
                                           std::uint64_t initial = 0);

/// 1-in 1-out zero run-length packer: replaces runs of zeros with a
/// single word 0xZZ00000000000000 | run_length at the run's end, and
/// passes nonzero samples through with a tag bit.  One output per input
/// (the packer emits a placeholder word mid-run), so it composes with
/// the one-token-per-firing shell contract.
std::unique_ptr<lip::Pearl> make_rle_marker(std::uint64_t initial = 0);

/// 2-in 1-out alpha blender: out = (a*w + b*(256-w))/256 with constant w.
std::unique_ptr<lip::Pearl> make_blender(std::uint64_t w,
                                         std::uint64_t initial = 0);

}  // namespace liplib::pearls
