// liplib/pearls/pearls.hpp
//
// A library of ready-made pearls (functional synchronous modules) used by
// the examples, tests and benchmark harnesses.  Pearls are deliberately
// simple arithmetic/stream operators: the latency-insensitive machinery is
// behaviour-agnostic, so these stand in for the IP blocks ("pearls") of a
// real System-on-Chip exactly as the paper's proof-of-concept examples do.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "liplib/lip/pearl.hpp"
#include "liplib/support/check.hpp"

namespace liplib::pearls {

/// Stateless pearl from a plain function.  `fn` maps the input datum
/// vector to the output datum vector each firing.
class LambdaPearl final : public lip::Pearl {
 public:
  using Fn = std::function<void(std::span<const std::uint64_t>,
                                std::span<std::uint64_t>)>;

  LambdaPearl(std::size_t num_in, std::size_t num_out, Fn fn,
              std::vector<std::uint64_t> initial_outputs = {})
      : num_in_(num_in),
        num_out_(num_out),
        fn_(std::move(fn)),
        init_(std::move(initial_outputs)) {
    LIPLIB_EXPECT(fn_ != nullptr, "LambdaPearl with empty function");
    init_.resize(num_out_, 0);
  }

  std::size_t num_inputs() const override { return num_in_; }
  std::size_t num_outputs() const override { return num_out_; }
  std::uint64_t initial_output(std::size_t port) const override {
    return init_.at(port);
  }
  void step(std::span<const std::uint64_t> in,
            std::span<std::uint64_t> out) override {
    fn_(in, out);
  }
  std::unique_ptr<Pearl> clone_reset() const override {
    return std::make_unique<LambdaPearl>(num_in_, num_out_, fn_, init_);
  }

 private:
  std::size_t num_in_;
  std::size_t num_out_;
  Fn fn_;
  std::vector<std::uint64_t> init_;
};

/// 1-in 1-out identity: out = in.  The canonical "pipeline stage" pearl.
std::unique_ptr<lip::Pearl> make_identity(std::uint64_t initial = 0);

/// 1-in 1-out: out = in + addend.
std::unique_ptr<lip::Pearl> make_add_const(std::uint64_t addend,
                                           std::uint64_t initial = 0);

/// 2-in 1-out: out = in0 + in1 (wrapping).
std::unique_ptr<lip::Pearl> make_adder(std::uint64_t initial = 0);

/// 2-in 1-out: out = in0 * in1 (wrapping).
std::unique_ptr<lip::Pearl> make_multiplier(std::uint64_t initial = 0);

/// 2-in 1-out: out = max(in0, in1).
std::unique_ptr<lip::Pearl> make_max(std::uint64_t initial = 0);

/// 1-in 2-out broadcast: both outputs equal the input.
std::unique_ptr<lip::Pearl> make_fork2(std::uint64_t initial = 0);

/// 1-in 1-out stateful accumulator: out = sum of all inputs so far.
std::unique_ptr<lip::Pearl> make_accumulator(std::uint64_t initial = 0);

/// 1-in 1-out delay line of `depth` activations (out = input `depth`
/// firings ago; zero-initialized).
std::unique_ptr<lip::Pearl> make_delay(std::size_t depth,
                                       std::uint64_t initial = 0);

/// 1-in 1-out integer FIR filter with the given taps (wrapping
/// arithmetic): out = sum taps[i] * x[n-i].
std::unique_ptr<lip::Pearl> make_fir(std::vector<std::uint64_t> taps,
                                     std::uint64_t initial = 0);

/// 1-in 1-out leaky integrator (IIR): y = (y * num) / den + x, integer.
std::unique_ptr<lip::Pearl> make_leaky_integrator(std::uint64_t num,
                                                  std::uint64_t den,
                                                  std::uint64_t initial = 0);

/// 1-in 1-out bit mixer (xorshift-multiply hash stage) — a stand-in for a
/// complex combinational datapath block.
std::unique_ptr<lip::Pearl> make_bit_mixer(std::uint64_t initial = 0);

/// 0-in 1-out generator: emits seed, seed+stride, seed+2*stride, ...
/// Its shell fires whenever the output channel is free.
std::unique_ptr<lip::Pearl> make_generator(std::uint64_t seed,
                                           std::uint64_t stride);

/// 2-in 2-out butterfly: out0 = in0 + in1, out1 = in0 - in1 (wrapping);
/// the classic FFT/CORDIC-style two-port stage.
std::unique_ptr<lip::Pearl> make_butterfly(std::uint64_t initial0 = 0,
                                           std::uint64_t initial1 = 0);

/// 2-in 2-out CORDIC micro-rotation of index k (integer shift-add form):
/// x' = x - (y >> k), y' = y + (x >> k).  A chain of these is the
/// iterative rotator SoCs place at the end of long datapaths.
std::unique_ptr<lip::Pearl> make_cordic_stage(unsigned k,
                                              std::uint64_t initial0 = 0,
                                              std::uint64_t initial1 = 0);

/// 2-in 1-out multiply-accumulate: state += in0 * in1; out = state.
std::unique_ptr<lip::Pearl> make_mac(std::uint64_t initial = 0);

/// 1-in 1-out saturating clamp to [0, cap].
std::unique_ptr<lip::Pearl> make_saturate(std::uint64_t cap,
                                          std::uint64_t initial = 0);

/// 1-in 1-out decimating tagger: out = in | (firing index << 56) — makes
/// reordering and duplication visible in long property tests.
std::unique_ptr<lip::Pearl> make_sequence_tagger(std::uint64_t initial = 0);

/// Names accepted by make_by_name(), for randomized property tests.
/// Only 1-in 1-out pearls are listed so any topology shape can use them.
const std::vector<std::string>& unary_pearl_names();

/// Factory by name; `salt` perturbs constants so two instances differ.
std::unique_ptr<lip::Pearl> make_by_name(const std::string& name,
                                         std::uint64_t salt);

}  // namespace liplib::pearls
