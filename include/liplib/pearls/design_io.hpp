// liplib/pearls/design_io.hpp
//
// Behavioural netlists: interprets the annotations of an annotated .lid
// file (liplib/graph/netlist_io.hpp) as pearl and environment specs and
// produces a ready-to-run lip::Design.  This is what lets lidtool run a
// full-data simulation straight from a file:
//
//   source  cam      sparse(7,1,3)      # counter stream, ready 1/3
//   process fir0 1 1 fir(1,2,1)
//   process acc  1 1 accumulator
//   sink    out      periodic(2)        # consume every 2nd cycle
//   channel cam.0 -> fir0.0
//   channel fir0.0 -> acc.0 : F H
//   channel acc.0 -> out.0
//
// Spec grammar: name or name(arg,...) with unsigned integer arguments
// and no spaces.  Unannotated processes default per arity (identity,
// adder, fork2, butterfly, generator); unannotated sources are counters,
// unannotated sinks greedy.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "liplib/graph/netlist_io.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/lip/environment.hpp"
#include "liplib/lip/pearl.hpp"

namespace liplib::pearls {

/// Builds a pearl from a spec string.  `num_inputs`/`num_outputs` is the
/// arity the node demands; specs with mismatched arity throw ApiError.
/// Known specs: identity[(init)], add_const(k[,init]), adder, multiplier,
/// max, fork2[(init)], accumulator[(init)], delay(d), fir(t1,...),
/// leaky(num,den), mixer, saturate(cap), tagger, generator(seed,stride),
/// butterfly[(i0,i1)], cordic(k), mac, blender(w), transform8,
/// quantizer(q), rle.
std::unique_ptr<lip::Pearl> pearl_from_spec(const std::string& spec,
                                            std::size_t num_inputs,
                                            std::size_t num_outputs);

/// Builds a source behaviour from a spec: counter, cyclic(v1,...),
/// sparse(seed,num,den).
lip::SourceBehavior source_from_spec(const std::string& spec);

/// Builds a sink behaviour from a spec: greedy, periodic(p[,phase]),
/// random(seed,num,den), script(b1,b2,...) with bits.
lip::SinkBehavior sink_from_spec(const std::string& spec);

/// Parses an annotated netlist into a ready-to-run Design.
lip::Design parse_design(std::istream& in);
lip::Design parse_design_string(const std::string& text);

}  // namespace liplib::pearls
