// liplib/graph/mcr.hpp
//
// Exact minimum cycle ratio analysis of the throughput constraint graph.
//
// The loop bound T = min over cycles of S_C/(S_C + R_C) (paper; Carloni
// DAC'00) is a minimum cycle ratio problem: every channel is an edge with
// one token (the producing shell's initialized output) and length
// 1 + stations.  enumerate_cycles() solves it by explicit enumeration,
// which is exponential on dense graphs; this module solves it in
// polynomial time (parametric Bellman-Ford with an exact rational
// certificate), so large synthesized LIDs can be analyzed too.

#pragma once

#include <optional>

#include "liplib/graph/topology.hpp"
#include "liplib/support/rational.hpp"

namespace liplib::graph {

/// Exact minimum of S_C/(S_C + R_C) over all directed cycles, or nullopt
/// when the topology is feedforward (no cycle).  Agrees with
/// enumerate_cycles() (the test suite locks them together) but runs in
/// O(V·E · log(V·Lmax)) instead of enumerating cycles.
std::optional<Rational> min_cycle_ratio(const Topology& topo);

}  // namespace liplib::graph
