// liplib/graph/topology.hpp
//
// Structural description of a latency-insensitive design: a directed graph
// of synchronous processes ("pearls", to be wrapped in shells), environment
// sources and sinks, and channels each carrying an ordered chain of relay
// stations (full or half).
//
// A Topology is purely structural — it knows nothing about data or about
// the protocol.  It is the single artifact shared by:
//   - lip::System        (full-data cycle-accurate simulation)
//   - skeleton::Skeleton (valid/stop-only simulation)
//   - graph analyses     (throughput, transient bound, equalization)
//   - rtl elaboration    (event-driven RTL netlist)

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "liplib/support/check.hpp"

namespace liplib::graph {

/// Index of a node within a Topology.
using NodeId = std::size_t;

/// Index of a channel within a Topology.
using ChannelId = std::size_t;

/// Kind of a topology node.
enum class NodeKind {
  kProcess,  ///< a synchronous module, wrapped in a shell in the LID
  kSource,   ///< environment producer (primary input)
  kSink,     ///< environment consumer (primary output)
};

/// Kind of relay station on a channel.
enum class RsKind {
  kFull,  ///< two registers, registered stop (classic skid buffer)
  kHalf,  ///< one register, combinational stop gating (the paper's novelty)
};

/// Reference to an output port of a node.
struct OutRef {
  NodeId node = 0;
  std::size_t port = 0;
};

/// Reference to an input port of a node.
struct InRef {
  NodeId node = 0;
  std::size_t port = 0;
};

/// One node of the topology.
struct Node {
  std::string name;
  NodeKind kind = NodeKind::kProcess;
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
};

/// One channel: a point-to-point connection from an output port to an
/// input port, traversing `stations` relay stations in order (the first
/// element is the station closest to the producer).
struct Channel {
  OutRef from;
  InRef to;
  std::vector<RsKind> stations;

  std::size_t num_stations() const { return stations.size(); }
  std::size_t num_full() const;
  std::size_t num_half() const;
};

/// Structural problems found by Topology::validate().
struct ValidationIssue {
  enum class Severity { kError, kWarning };
  Severity severity = Severity::kError;
  std::string message;
};

/// Result of Topology::validate().
struct ValidationReport {
  std::vector<ValidationIssue> issues;

  bool ok() const {
    for (const auto& i : issues) {
      if (i.severity == ValidationIssue::Severity::kError) return false;
    }
    return true;
  }
  std::string to_string() const;
};

/// A latency-insensitive design's structure.
///
/// Builder usage:
///   Topology t;
///   NodeId src = t.add_source("src");
///   NodeId a = t.add_process("A", 1, 1);
///   NodeId out = t.add_sink("out");
///   t.connect({src, 0}, {a, 0}, {RsKind::kFull});
///   t.connect({a, 0}, {out, 0}, {RsKind::kFull});
///   auto report = t.validate();
class Topology {
 public:
  /// Adds a synchronous process node with the given port arity.
  NodeId add_process(std::string name, std::size_t num_inputs,
                     std::size_t num_outputs);

  /// Adds an environment source (one output port, no inputs).
  NodeId add_source(std::string name);

  /// Adds an environment sink (one input port, no outputs).
  NodeId add_sink(std::string name);

  /// Connects an output port to an input port through the given relay
  /// station chain.  An output port may drive several channels (fanout);
  /// an input port accepts exactly one channel.
  ChannelId connect(OutRef from, InRef to, std::vector<RsKind> stations = {});

  /// Convenience: connect through `n` full relay stations.
  ChannelId connect_full(OutRef from, InRef to, std::size_t n) {
    return connect(from, to, std::vector<RsKind>(n, RsKind::kFull));
  }

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Channel>& channels() const { return channels_; }
  const Node& node(NodeId id) const { return nodes_.at(id); }
  const Channel& channel(ChannelId id) const { return channels_.at(id); }
  Channel& channel_mut(ChannelId id) { return channels_.at(id); }

  /// Channels leaving any output port of `n`.
  std::vector<ChannelId> channels_from(NodeId n) const;
  /// Channels entering any input port of `n`.
  std::vector<ChannelId> channels_into(NodeId n) const;
  /// The unique channel driving this input port, if connected.
  std::optional<ChannelId> channel_into(InRef in) const;
  /// Channels driven by this output port (fanout set).
  std::vector<ChannelId> channels_of(OutRef out) const;

  /// Totals over all channels.
  std::size_t total_stations() const;
  std::size_t total_full_stations() const;
  std::size_t total_half_stations() const;
  std::size_t num_processes() const;
  std::size_t num_sources() const;
  std::size_t num_sinks() const;

  /// Structural checks:
  ///  errors   — unconnected input port, input port driven twice,
  ///             out-of-range port references;
  ///  errors   — a process→process channel with no relay station
  ///             (the paper: >= 1 memory element between two shells);
  ///             demoted to nothing when `require_station_between_shells`
  ///             is false (shells with input queues — the Carloni-style
  ///             baseline — provide the memory element themselves);
  ///  warnings — half relay stations on channels that lie on a cycle
  ///             (potential deadlock, paper §liveness);
  ///  warnings — source→sink channels (degenerate).
  ValidationReport validate(bool require_station_between_shells = true) const;

  /// True if the process/channel graph (ignoring sources and sinks) has
  /// no directed cycle — the "feed-forward (possibly reconvergent)" class.
  bool is_feedforward() const;

  /// Node ids of every directed cycle's channel set is expensive to
  /// enumerate in general; this returns, per channel, whether it lies on
  /// some directed cycle (computed via strongly connected components).
  std::vector<bool> channels_on_cycles() const;

  /// Strongly connected components over process nodes; each inner vector
  /// is one SCC with >= 1 node.  Components are listed in reverse
  /// topological order.
  std::vector<std::vector<NodeId>> process_sccs() const;

  /// Graphviz dot rendering (relay stations drawn as boxes on edges).
  std::string to_dot() const;

 private:
  void check_out(OutRef r) const;
  void check_in(InRef r) const;

  std::vector<Node> nodes_;
  std::vector<Channel> channels_;
};

}  // namespace liplib::graph
