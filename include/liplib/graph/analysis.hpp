// liplib/graph/analysis.hpp
//
// Analytic performance model of latency-insensitive designs — the paper's
// closed-form results:
//   - trees:                    T = 1
//   - feedback loops:           T = S / (S + R)
//   - reconvergent feedforward: T = (m − i) / m
//   - general topologies:       the slowest subtopology dictates T
// plus a transient-length bound ("the transient length is related to the
// number of relay stations and shells, and can be predicted upfront").

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "liplib/graph/topology.hpp"
#include "liplib/support/rational.hpp"

namespace liplib::graph {

/// Throughput of a feedback loop with S shells and R relay stations:
/// at most S valid data circulate among S+R register positions.
Rational loop_throughput(std::size_t num_shells, std::size_t num_stations);

/// Throughput of a reconvergent feedforward pair per the paper's formula
/// T = (m − i)/m, where `i` is the relay-station imbalance between the
/// reconvergent branches and `m` the total relay stations in the implicit
/// loop plus the shells on the branch with the most relay stations.
Rational reconvergent_throughput(std::size_t m, std::size_t i);

/// One directed cycle through process nodes, with its register statistics.
struct CycleInfo {
  std::vector<NodeId> nodes;   ///< process nodes on the cycle, in order
  std::size_t shells = 0;      ///< == nodes.size()
  std::size_t stations = 0;    ///< relay stations on the cycle's channels
  Rational throughput{1};      ///< shells / (shells + stations)
};

/// Enumerates simple directed cycles over process nodes (Johnson-style
/// DFS), up to `max_cycles`; throws ApiError when the budget is exceeded.
/// Self-loops count.  Sources and sinks never lie on cycles.
std::vector<CycleInfo> enumerate_cycles(const Topology& topo,
                                        std::size_t max_cycles = 4096);

/// One reconvergent fork/join pair in a feedforward topology, with the
/// paper's parameters.
struct ReconvergenceInfo {
  NodeId fork = 0;
  NodeId join = 0;
  /// Register statistics of the two extremal branches: relay stations on
  /// the lightest and heaviest (by station count) simple path fork→join.
  std::size_t min_stations = 0;
  std::size_t max_stations = 0;
  /// Shells strictly between fork and join on the heaviest path, plus the
  /// join shell itself (the paper counts "the shells on the path with the
  /// highest number of relay stations" as part of the implicit loop).
  std::size_t heavy_path_shells = 0;
  std::size_t i() const { return max_stations - min_stations; }
  std::size_t m() const {
    return min_stations + max_stations + heavy_path_shells;
  }
  Rational throughput() const {
    return reconvergent_throughput(m(), i());
  }
};

/// Scans a feedforward topology for fork/join pairs and computes the
/// paper's implicit-loop parameters for each.  Path enumeration is
/// budgeted by `max_paths` per pair (ApiError beyond it).
///
/// Accuracy note: the paper's closed form T = (m−i)/m is exact when the
/// heavier branch is uniformly pipelined (the whole Fig. 1 family and the
/// sweeps in bench_throughput_reconvergent) but only approximate for
/// irregular station distributions; exact_implicit_loop_bound() below is
/// exact in all cases (for the paper's variant protocol).
std::vector<ReconvergenceInfo> analyze_reconvergence(
    const Topology& topo, std::size_t max_paths = 4096);

/// One implicit loop: an ordered pair of interior-disjoint directed paths
/// between a fork and a join, one traversed forward (data) and one
/// backward (stops), with its exact throughput bound under the variant
/// protocol:
///
///   T = min(1, (tokens_fwd + slack_back) / (registers_fwd + stops_back))
///
/// where, over the forward path's channels, registers_fwd = Σ(stations+1)
/// (each channel's producer register plus its stations) and tokens_fwd =
/// #channels (every producer register is initialized valid); and over the
/// backward path's channels, slack_back = Σ(2·full + half) (empty
/// steady-state station capacity; interior shell registers hold live
/// tokens and contribute no slack) and stops_back = Σ full (each
/// registered stop adds one cycle to the loop; half stations and shells
/// are stop-transparent).  This generalizes the paper's (m−i)/m — the two
/// coincide on uniformly pipelined branches — and is validated cycle-
/// exactly against simulation in the test suite.
struct ImplicitLoopInfo {
  NodeId fork = 0;
  NodeId join = 0;
  std::size_t registers_fwd = 0;
  std::size_t tokens_fwd = 0;
  std::size_t slack_back = 0;
  std::size_t stops_back = 0;
  Rational throughput() const {
    const Rational t(
        static_cast<std::int64_t>(tokens_fwd + slack_back),
        static_cast<std::int64_t>(registers_fwd + stops_back));
    return t < Rational(1) ? t : Rational(1);
  }
};

/// Exact implicit-loop analysis (variant protocol): enumerates fork/join
/// pairs and interior-disjoint ordered path pairs, returning every
/// implicit loop found.  Budgeted like analyze_reconvergence.
std::vector<ImplicitLoopInfo> analyze_implicit_loops(
    const Topology& topo, std::size_t max_paths = 4096);

/// min over analyze_implicit_loops of the exact bound (1 when none).
Rational exact_implicit_loop_bound(const Topology& topo,
                                   std::size_t max_paths = 4096);

/// Full analytic prediction for a topology.
struct ThroughputPrediction {
  /// min over cycles of S/(S+R); 1 when the topology is feedforward.
  Rational cycle_bound{1};
  /// min over reconvergent pairs of (m−i)/m; 1 when none reconverge.
  /// Only computed for feedforward topologies (implicit loops interact
  /// with explicit loops in ways the closed form does not cover).
  Rational reconvergence_bound{1};
  /// min of the two — the paper's "slowest subtopology" rule.
  Rational system() const {
    return cycle_bound < reconvergence_bound ? cycle_bound
                                             : reconvergence_bound;
  }
  std::vector<CycleInfo> cycles;
  std::vector<ReconvergenceInfo> reconvergences;
};

/// Applies the paper's formulas to an arbitrary topology.
ThroughputPrediction predict_throughput(const Topology& topo);

/// A directed cycle whose backward stop path is fully combinational:
/// every relay station on it is a half station, so the stop wires close
/// a combinational loop (a latch) — the structural precondition of the
/// paper's "potential deadlock iff half relay stations are present in
/// loops".  One full station anywhere on the cycle grounds the latch.
struct StopCycleInfo {
  std::vector<NodeId> nodes;      ///< shells on the cycle
  std::size_t half_stations = 0;  ///< all stations on it are half
};

/// Enumerates the combinational stop cycles of a topology (budgeted like
/// enumerate_cycles).  Empty result == no latent stop latch anywhere ==
/// worst-case-occupancy screening is guaranteed live; the test suite
/// locks this equivalence against skeleton::screen_for_deadlock.
std::vector<StopCycleInfo> find_stop_cycles(const Topology& topo,
                                            std::size_t max_cycles = 4096);

/// Upper bound on the transient length: the number of cycles after which
/// the system is periodic.  Computed as the total number of register
/// positions (shell output registers + relay-station registers) times a
/// small safety factor for cyclic topologies; for trees this reduces to
/// (a bound on) the longest register path.  Measured transients in the
/// test suite must never exceed it.
std::uint64_t transient_bound(const Topology& topo);

/// Longest register path (shell output registers + stations) from any
/// source to any sink, following channels; the paper's tree-transient
/// figure ("the initial latency can be as much as the longest path").
/// Returns nullopt for cyclic topologies.
std::optional<std::uint64_t> longest_register_path(const Topology& topo);

}  // namespace liplib::graph
