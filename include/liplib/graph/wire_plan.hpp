// liplib/graph/wire_plan.hpp
//
// Physical-design front end: deciding where relay stations go in the
// first place.  The paper's premise is that "the performance of future
// Systems-on-Chip will be limited by the latency of long interconnects
// requiring more than one clock cycle for the signals to propagate" —
// i.e. a wire of length L with a single-cycle signal reach D needs at
// least ceil(L/D) - 1 pipeline elements.
//
// plan_wire_pipelining annotates a station-less topology from estimated
// wire lengths, choosing the station kind per channel:
//   - half stations are cheaper (one register) and are used wherever the
//     channel is not on a loop;
//   - channels on loops get full stations, so the stop path of every
//     loop stays registered and the design is deadlock free by
//     construction (paper: half stations are the hazard only on loops);
//   - optionally, feed-forward designs are path-equalized afterwards so
//     the inserted pipelining costs no throughput.

#pragma once

#include <cstddef>
#include <vector>

#include "liplib/graph/topology.hpp"

namespace liplib::graph {

/// Options for plan_wire_pipelining.
struct WirePlanOptions {
  /// Distance a signal travels in one clock cycle (same unit as lengths).
  double reach_per_cycle = 1.0;
  /// Use half stations off-cycle (cheaper); full stations are always
  /// used on cycles.
  bool prefer_half_off_cycle = true;
  /// Run path equalization after insertion (feed-forward designs only;
  /// ignored for cyclic designs).
  bool equalize = true;
};

/// Result of wire planning.
struct WirePlanResult {
  std::size_t stations_inserted = 0;   ///< for wire reach
  std::size_t spare_inserted = 0;      ///< added by equalization
  std::size_t full_count = 0;
  std::size_t half_count = 0;
  /// Registers spent: 2 per full station, 1 per half station.
  std::size_t registers() const { return 2 * full_count + half_count; }
};

/// Inserts relay stations into `topo` so every channel tolerates its wire
/// length: channel c of length lengths[c] receives
/// max(0, ceil(lengths[c]/reach) - 1) stations (its existing stations
/// count toward the requirement).  lengths.size() must equal
/// topo.channels().size().  Throws ApiError on bad input.
WirePlanResult plan_wire_pipelining(Topology& topo,
                                    const std::vector<double>& lengths,
                                    const WirePlanOptions& options = {});

}  // namespace liplib::graph
