// liplib/graph/generators.hpp
//
// Parameterized topology generators covering the paper's taxonomy:
// trees (pipelines are degenerate trees), reconvergent feedforward
// arrangements, feedback rings, and feed-forward combinations of
// self-interacting loops — plus randomized feedforward DAGs for the
// property-based test suite.  Each generator also returns the landmark
// nodes a caller needs (sources, sinks, fork/join, ...), so benches and
// tests never have to rediscover structure by name.

#pragma once

#include <cstdint>
#include <vector>

#include "liplib/graph/topology.hpp"
#include "liplib/support/rng.hpp"

namespace liplib::graph {

/// A generated topology plus its landmarks.
struct Generated {
  Topology topo;
  std::vector<NodeId> sources;
  std::vector<NodeId> processes;
  std::vector<NodeId> sinks;
  /// Reconvergent generators: the fork and join nodes.
  NodeId fork = 0;
  NodeId join = 0;
  /// Ring generators: the channels that lie on each loop, per loop.
  std::vector<std::vector<ChannelId>> loops;
};

/// Linear pipeline: source → P1 → … → Pn → sink, every process 1-in
/// 1-out, each process→process channel carrying `stations_per_channel`
/// stations of the given kind.  The simplest "tree" (T = 1).
Generated make_pipeline(std::size_t num_processes,
                        std::size_t stations_per_channel,
                        RsKind kind = RsKind::kFull);

/// Balanced binary reduction tree of the given depth: 2^depth sources feed
/// 2-input join processes down to one sink.  Channel station counts are
/// uniform, so the tree is balanced and T = 1.
Generated make_tree(std::size_t depth, std::size_t stations_per_channel,
                    RsKind kind = RsKind::kFull);

/// The paper's Fig. 1 class: a fork process A drives a join process C
/// both directly (short branch, `short_stations` stations) and through a
/// chain of `long_shells` intermediate shells (long branch; each of its
/// `long_shells + 1` channels carries `long_stations_per_hop` stations).
/// All stations are `kind`.  A source feeds A; C feeds a sink.
Generated make_reconvergent(std::size_t short_stations,
                            std::size_t long_shells,
                            std::size_t long_stations_per_hop,
                            RsKind kind = RsKind::kFull);

/// The exact Fig. 1 topology of the paper: shells A, B, C with channels
/// A→B, B→C, A→C of one full relay station each (i = 1, m = 5, T = 4/5).
Generated make_fig1();

/// Closed feedback ring of `num_shells` 1-in 1-out shells; channel k
/// carries stations_per_channel[k] stations of `kind`.  No sources or
/// sinks: the circulating tokens are the shells' initialized outputs.
Generated make_closed_ring(std::vector<std::size_t> stations_per_channel,
                           RsKind kind = RsKind::kFull);

/// Feedback ring with observation: shell A (1-in 2-out) sends to shell B
/// and to a sink; B returns to A.  A→B carries `ab_stations`, B→A carries
/// `ba_stations` (kind `kind`).  S = 2, R = ab + ba, T = S/(S+R).
Generated make_ring_with_tap(std::size_t ab_stations,
                             std::size_t ba_stations,
                             RsKind kind = RsKind::kFull);

/// The paper's Fig. 2 instance: the two-shell ring with one full relay
/// station per direction (S = 2, R = 2, T = 1/2), tapped by a sink.
Generated make_fig2();

/// Specification of one self-interacting loop for make_loop_chain.
struct RingSpec {
  std::size_t extra_shells = 1;  ///< shells in the loop besides the port
  std::size_t loop_stations = 2; ///< stations distributed around the loop
  RsKind kind = RsKind::kFull;
};

/// The paper's "most general topology": a feed-forward chain of
/// self-interacting loops.  Each loop has a 2-in 2-out port shell that
/// receives the chain input and emits the chain output; loops are joined
/// by channels with `chain_stations` full stations; a source feeds the
/// first loop and a sink drains the last.  System throughput is dictated
/// by the slowest loop (min over loops of S/(S+R)).
Generated make_loop_chain(const std::vector<RingSpec>& specs,
                          std::size_t chain_stations = 1);

/// Random "most general topology" (paper): a feed-forward chain of
/// `segments` randomly chosen fragments — pipeline stages, reconvergent
/// diamonds and self-interacting loops — between a source and a sink.
/// Half stations are used off-cycle when `allow_half`, and additionally
/// inside loops when `allow_half_in_loops` (the potential-deadlock
/// configuration; structurally valid, flagged by validate()).
Generated make_random_composite(Rng& rng, std::size_t segments,
                                bool allow_half = true,
                                bool allow_half_in_loops = false);

/// Random feedforward DAG with `num_processes` processes of 1 or 2 inputs
/// and one (possibly fanned-out) output, random station counts in
/// [1, max_stations], and a station-kind mix chosen by `rng`.  Every
/// undriven structure is completed with sources/sinks, so validate()
/// always passes with no errors.
Generated make_random_feedforward(Rng& rng, std::size_t num_processes,
                                  std::size_t max_stations = 3,
                                  bool allow_half = true);

}  // namespace liplib::graph
