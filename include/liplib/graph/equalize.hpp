// liplib/graph/equalize.hpp
//
// Path equalization: "to get the maximum T from a feedforward arrangement,
// it is necessary to insert enough spare relay stations to make all
// converging paths of the same length".  This module computes a
// register-balanced re-annotation of a feedforward topology by longest-
// path labelling (the classic slack-distribution LP relaxation) and can
// apply it in place.

#pragma once

#include <cstdint>
#include <vector>

#include "liplib/graph/topology.hpp"

namespace liplib::graph {

/// Outcome of equalization planning.
struct EqualizationPlan {
  /// stations_to_add[c] = spare relay stations to append to channel c.
  std::vector<std::size_t> stations_to_add;
  /// Total spare stations inserted.
  std::size_t total_added = 0;
  /// Register level assigned to each node by the longest-path labelling.
  std::vector<std::uint64_t> level;

  bool balanced_already() const { return total_added == 0; }
};

/// Computes the minimal per-channel insertions (under longest-path
/// levelling, which never lengthens any source→sink path beyond the
/// currently longest one) that make every channel satisfy
///   level(to) == level(from) + 1 + stations(c),
/// so all reconvergent branches carry equal register counts and the
/// feedforward throughput returns to 1.
///
/// Precondition: the topology is feedforward; throws ApiError otherwise
/// (equalizing explicit loops cannot restore T = 1 — the loop bound
/// S/(S+R) is fundamental).
EqualizationPlan plan_equalization(const Topology& topo);

/// Applies a plan in place, appending `kind` stations to each channel.
/// Returns the number of stations inserted.
std::size_t apply_equalization(Topology& topo, const EqualizationPlan& plan,
                               RsKind kind = RsKind::kFull);

/// Convenience: plan + apply.  Returns the number of stations inserted.
std::size_t equalize_paths(Topology& topo, RsKind kind = RsKind::kFull);

}  // namespace liplib::graph
