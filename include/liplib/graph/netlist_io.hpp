// liplib/graph/netlist_io.hpp
//
// A small human-writable netlist format for latency-insensitive designs,
// so topologies can live in files, be diffed, and drive the lidtool CLI.
//
// Grammar (one statement per line, '#' starts a comment):
//
//   source  <name>
//   sink    <name>
//   process <name> <num_inputs> <num_outputs>
//   channel <name>.<port> -> <name>.<port> [ : <stations> ]
//
// where <stations> is a whitespace-separated list of station kinds,
// each `F`/`full` or `H`/`half`, ordered from producer to consumer.
// Example:
//
//   # the paper's Fig. 1
//   source src
//   process A 1 2
//   process B 1 1
//   process C 2 1
//   sink out
//   channel src.0 -> A.0
//   channel A.0 -> B.0 : F
//   channel B.0 -> C.0 : F
//   channel A.1 -> C.1 : F
//   channel C.0 -> out.0

#pragma once

#include <iosfwd>
#include <string>

#include "liplib/graph/topology.hpp"

namespace liplib::graph {

/// Parses the netlist format.  Throws ApiError with a line number on any
/// syntax or semantic problem (unknown node, bad port, duplicate name).
Topology parse_netlist(std::istream& in);

/// A topology plus the optional per-node annotation token (empty when
/// absent).  Node statements may carry one trailing annotation:
///
///   process fir0 1 1  fir(1,2,1)
///   source  cam       sparse(7,1,3)
///   sink    out       periodic(2)
///
/// The structural layer stores annotations verbatim; the behavioural
/// layer (liplib/pearls/design_io.hpp) interprets them as pearl and
/// environment specs.
struct AnnotatedNetlist {
  Topology topo;
  std::vector<std::string> node_annotation;  // indexed by NodeId
};

/// Like parse_netlist but keeps annotations (plain parse_netlist rejects
/// them, keeping the structural format strict).
AnnotatedNetlist parse_netlist_annotated(std::istream& in);
AnnotatedNetlist parse_netlist_annotated_string(const std::string& text);

/// Convenience overload on a string.
Topology parse_netlist_string(const std::string& text);

/// Renders a topology in the netlist format.  parse(write(t))
/// reconstructs an identical topology (same node order, channel order and
/// station chains).
std::string write_netlist(const Topology& topo);

}  // namespace liplib::graph
